"""B10 — Incremental maintenance vs full recomputation.

The paper's premise (§1, citing [16, 13]): "Incremental view maintenance
typically out-performs re-computation in cases where the volume of source
data is large."  This microbenchmark measures, for growing base-relation
sizes, the wall-clock cost of

* recomputing ``V = R ./ S`` from scratch after one update, vs
* propagating the update's delta incrementally,

and reports the speedup.  Expected shape: recomputation cost grows with
|R| + |S| while the incremental cost stays roughly flat, so the speedup
grows with base size.

Paper question: §1's premise (citing [16, 13]) — incremental
maintenance beats recomputation at volume.  Reads: wall-clock per
maintenance strategy and base size; no simulation metrics are involved.
"""

import time

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import BaseRelation, Join
from repro.relational.plan import MaintenancePlan
from repro.relational.rows import Row
from repro.relational.schema import Schema

from benchmarks.conftest import fmt_table

EXPR = Join(BaseRelation("R"), BaseRelation("S"))
SIZES = (100, 1_000, 10_000)


def make_db(size: int) -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i % 50) for i in range(size)]
    )
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=i % 50, C=i) for i in range(size // 2)]
    )
    return db


def measure(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_all():
    rows = []
    for size in SIZES:
        db = make_db(size)
        update_delta = {"R": Delta.insert(Row(A=size + 1, B=7))}

        recompute = measure(lambda: evaluate(EXPR, db))
        incremental = measure(lambda: propagate_delta(EXPR, db, update_delta))
        rows.append((size, recompute, incremental, recompute / incremental))
    return rows


def test_b10_incremental_vs_recompute(benchmark, report):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = [
        [size, f"{rec * 1e3:.2f}", f"{inc * 1e3:.3f}", f"{ratio:.0f}x"]
        for size, rec, inc, ratio in rows
    ]
    report("B10 — one-update maintenance of V = R ./ S:")
    report(fmt_table(
        ["|R| rows", "recompute (ms)", "incremental (ms)", "speedup"],
        table,
    ))
    report("")
    report("Shape: the incremental path's advantage grows with base size — "
           "the premise of warehouse incremental view maintenance.")

    speedups = [ratio for _s, _r, _i, ratio in rows]
    assert speedups[-1] > speedups[0], "speedup must grow with base size"
    assert speedups[-1] > 20, "incremental must clearly win at 10k rows"

    # And it must be *correct*: delta-applied result == recomputation,
    # for the unindexed rules and the compiled indexed plan alike.
    db = make_db(500)
    before = evaluate(EXPR, db)
    deltas = {"R": Delta.insert(Row(A=999_999, B=7))}
    plan = MaintenancePlan(EXPR, db)
    delta = propagate_delta(EXPR, db, deltas)
    assert plan.propagate(deltas) == delta
    db.apply_deltas(deltas)
    plan.advance()
    materialized = before.copy()
    delta.apply_to(materialized)
    assert materialized == evaluate(EXPR, db)
