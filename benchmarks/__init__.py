"""Benchmark/experiment harness (see DESIGN.md's experiment index)."""
