"""EX3 — Example 3: the full SPA trace, t0 through t11.

Receipt order REL1, AL21, REL2, REL3, AL32, AL23, AL11.  The regenerated
trace must show the paper's milestones:

* t5 — WT2 (row 2) applied as soon as AL32 arrives, *before* row 1;
* t9 — WT1 (row 1) applied when AL11 arrives;
* t10 — WT3 (row 3) cascades immediately after;
* t11 — the VUT is empty (all rows purged).
"""

from repro.merge.spa import SimplePaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList

from benchmarks.conftest import fmt_table


def make_al(view, covered, tag=0):
    return ActionList.from_delta(view, view, tuple(covered), Delta.insert(Row(x=tag)))


STEPS = [
    ("REL1", "rel", 1, {"V1", "V2"}),
    ("AL21", "al", "V2", [1]),
    ("REL2", "rel", 2, {"V3"}),
    ("REL3", "rel", 3, {"V2"}),
    ("AL32", "al", "V3", [2]),
    ("AL23", "al", "V2", [3]),
    ("AL11", "al", "V1", [1]),
]


def run():
    spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
    trace = []
    for name, kind, a, b in STEPS:
        if kind == "rel":
            units = spa.receive_rel(a, frozenset(b))
        else:
            units = spa.receive_action_list(make_al(a, b))
        trace.append((name, [u.rows for u in units], len(spa.vut)))
    return spa, trace


def test_example3_spa_trace(benchmark, report):
    spa, trace = benchmark.pedantic(run, rounds=1, iterations=1)

    report("Example 3 — SPA event trace:")
    rows = [
        [name, str(applied) if applied else "-", vut_rows]
        for name, applied, vut_rows in trace
    ]
    report(fmt_table(["event", "rows applied", "VUT rows left"], rows))

    applied = {name: rows for name, rows, _n in trace}
    assert applied["AL32"] == [(2,)], "t5: row 2 applies before row 1"
    assert applied["AL23"] == [], "row 3 must wait behind row 1 in column V2"
    assert applied["AL11"] == [(1,), (3,)], "t9/t10: row 1 then row 3"
    assert spa.idle(), "t11: table fully purged"
