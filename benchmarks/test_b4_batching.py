"""B4 — Batched warehouse transactions (BWT, §4.3).

"When transaction overhead is high, the merge process can batch several
WT_i s and submit them to the warehouse as one batched warehouse
transaction. ... batching only yields strong consistency at the warehouse
rather than complete consistency, because each BWT may advance the
warehouse state by more than one."

The experiment fixes a high per-transaction warehouse overhead, sweeps the
BWT batch size, and reports warehouse transaction counts, makespan and the
verified MVC level.

Expected shape: bigger batches => fewer warehouse transactions and lower
makespan under high overhead, but the runs verify only MVC-strong (batch
size 1 remains MVC-complete).

Paper question: §4.3 — what does batching (BWT) buy and what does it
cost?  Reads: ``warehouse.commits`` (transaction count),
``RunMetrics.makespan`` / ``mean_staleness``, and the verified MVC level
per batch size.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

WH_OVERHEAD = 6.0  # expensive commits: the regime where batching pays
BATCH_SIZES = (1, 2, 4, 8)


def run_with_batch(batch_size: int):
    spec = WorkloadSpec(
        updates=80, rate=4.0, seed=17, mix=(0.6, 0.2, 0.2), arrivals="poisson"
    )
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(
            manager_kind="complete",
            submission_policy="batching",
            submission_batch_size=batch_size,
            warehouse_txn_overhead=WH_OVERHEAD,
            warehouse_action_cost=0.01,
            seed=17,
        ),
        spec,
    )
    return system


def test_b4_batching(benchmark, report):
    def experiment():
        results = []
        for size in BATCH_SIZES:
            system = run_with_batch(size)
            level = system.classify()
            metrics = system.metrics()
            results.append(
                (size, system.warehouse.commits, metrics.makespan,
                 metrics.mean_staleness, level)
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [
        [size, txns, f"{makespan:.0f}", f"{staleness:.1f}", level]
        for size, txns, makespan, staleness, level in results
    ]
    report(f"B4 — BWT batching (warehouse per-txn overhead {WH_OVERHEAD}):")
    report(fmt_table(
        ["batch size", "warehouse txns", "makespan", "mean staleness",
         "MVC level"],
        rows,
    ))
    report("")
    report("Shape: larger batches cut transaction count and makespan; the "
           "price is completeness — every batched run is strong, not "
           "complete (§4.3).")

    by_size = {size: (txns, makespan, level)
               for size, txns, makespan, _s, level in results}
    assert by_size[1][2] == "complete"  # batch of 1 preserves completeness
    for size in (2, 4, 8):
        assert by_size[size][2] == "strong"
    # Fewer transactions and no worse makespan as batches grow.
    assert by_size[8][0] < by_size[2][0] < by_size[1][0]
    assert by_size[8][1] < by_size[1][1]
