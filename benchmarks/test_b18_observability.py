"""B18 — Observability overhead: what does watching the run cost?

Paper question: none directly — this is infrastructure due diligence for
every *other* experiment.  The §7 study's numbers (B1–B17) are read off
traces and registry instruments; those instruments are only trustworthy
if recording them does not meaningfully distort the run being measured.

This experiment runs the B1 throughput workload (80 updates at rate 10
on the paper schema, seed 21) twice per round — tracing fully enabled vs
``trace_enabled=False`` — interleaved, best-of-N CPU time (scheduler
preemption must not count against tracing, and GC pauses are excluded
from the timed region because their *timing* is nondeterministic even
though the allocation cost they amortise is measured), and asserts

* full tracing slows the run by **less than 15%**,
* tracing does not change the *simulation* at all: identical virtual
  makespan and warehouse transaction count in both arms (observation
  must not perturb the observed system),
* the traced arm actually recorded what the money is paid for: ``proc_msg``
  events (the lineage carriers, read by ``Lineage.for_update``) and
  registry instruments (``proc_*``, ``chan_*``, ``merge_vut_size``).

Metrics/lineage fields read: CPU time only for the overhead ratio;
``sim.now``, ``warehouse.commits``, ``len(sim.trace)`` and
``len(sim.metrics)`` for the invariance checks.
"""

from __future__ import annotations

import gc
import time

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

UPDATES = 80
RATE = 10.0
ROUNDS = 6  # interleaved on/off pairs; best-of-N defeats scheduler noise
MAX_OVERHEAD = 0.15


def _run_once(trace_enabled: bool):
    config = SystemConfig(seed=21, trace_enabled=trace_enabled)
    spec = WorkloadSpec(updates=UPDATES, rate=RATE, seed=21,
                        mix=(0.6, 0.2, 0.2))
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        system = run_system(paper_world(), paper_views_example2(), config,
                            spec)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return elapsed, system


def test_b18_observability_overhead(benchmark, report):
    def experiment():
        _run_once(True)  # warm-up: imports, allocator, branch caches
        _run_once(False)
        on_times, off_times = [], []
        for _ in range(ROUNDS):
            elapsed_off, base = _run_once(False)
            elapsed_on, traced = _run_once(True)
            off_times.append(elapsed_off)
            on_times.append(elapsed_on)
        return min(off_times), min(on_times), base, traced

    off, on, base, traced = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    overhead = on / off - 1.0

    report(f"B18 — tracing overhead on the B1 workload "
           f"({UPDATES} updates, rate {RATE}, best of {ROUNDS}):")
    report(fmt_table(
        ["arm", "cpu ms", "trace events", "registry instruments"],
        [
            ["tracing off", f"{off * 1e3:.1f}", len(base.sim.trace),
             len(base.sim.metrics)],
            ["tracing on", f"{on * 1e3:.1f}", len(traced.sim.trace),
             len(traced.sim.metrics)],
        ],
    ))
    report(f"overhead: {overhead * 100:+.1f}%  (budget {MAX_OVERHEAD:.0%})")

    # Observation must not perturb the simulation itself.
    assert base.sim.now == traced.sim.now
    assert base.warehouse.commits == traced.warehouse.commits

    # The traced arm must have bought full observability ...
    assert traced.sim.trace.of_kind("proc_msg")
    assert traced.sim.trace.of_kind("wh_commit")
    assert traced.sim.metrics.value(
        "proc_messages_handled", process="integrator"
    ) == UPDATES
    # ... while the untraced arm still keeps registry instruments
    # (metrics are always on; only the event log is optional).
    assert len(base.sim.trace) == 0
    assert base.sim.metrics.value(
        "proc_messages_handled", process="integrator"
    ) == UPDATES

    assert overhead < MAX_OVERHEAD, (
        f"full tracing costs {overhead:.1%} on the B1 workload "
        f"(budget {MAX_OVERHEAD:.0%})"
    )
