"""B17 — The price of reliability: MVC under an actively faulty network.

The paper *assumes* reliable FIFO delivery (§4).  This experiment drops
the assumption and measures what winning it back costs: a full Figure-1
system runs under fault plans with increasing message-drop rates (plus
proportional duplication and delay spikes), with the reliable-channel
recovery layer switched on.  For each rate we report staleness,
throughput and the recovery work performed (retransmissions, suppressed
duplicates).  A second scenario adds a merge-process crash/restart on top
of the faults.

Shape claims:

* every faulted run still satisfies MVC-complete (recovery works),
* staleness rises monotonically-ish with the fault rate (retransmit
  latency is the price), while every update still gets through,
* for a fixed seed each configuration is bit-for-bit reproducible.

Paper question: §4's delivery assumption, inverted — what does winning
reliability back cost when the network is faulty?  Reads:
``RunMetrics.mean_staleness`` / ``p95_staleness`` / throughput, channel
``retransmissions`` / ``duplicates_suppressed`` (registry
``chan_retransmissions`` / ``chan_duplicates_suppressed``), and the
``msg_drop`` / ``msg_retransmit`` trace events per drop rate.
"""

from repro.faults import CrashSpec, FaultPlan
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example1, paper_world

from benchmarks.conftest import fmt_table, run_system

DROP_RATES = (0.0, 0.01, 0.05)
UPDATES = 60


def plan_for(drop_rate: float, crash: bool = False) -> FaultPlan | None:
    if drop_rate == 0.0 and not crash:
        return None  # plain channels: the no-fault baseline
    crashes = (CrashSpec("merge", at=15.0, restart_after=4.0),) if crash else ()
    return FaultPlan(
        seed=17,
        drop_rate=drop_rate,
        duplicate_rate=drop_rate / 2,
        delay_spike_rate=drop_rate / 2,
        delay_spike=8.0,
        crashes=crashes,
    )


def run_once(drop_rate: float, crash: bool = False):
    spec = WorkloadSpec(
        updates=UPDATES, rate=2.0, seed=8, mix=(0.7, 0.15, 0.15),
        arrivals="poisson",
    )
    config = SystemConfig(
        manager_kind="complete", seed=8, fault_plan=plan_for(drop_rate, crash)
    )
    system = run_system(paper_world(), paper_views_example1(), config, spec)
    retransmissions = len(system.sim.trace.of_kind("msg_retransmit"))
    drops = len(system.sim.trace.of_kind("msg_drop"))
    return {
        "metrics": system.metrics(),
        "mvc_ok": system.check_mvc("complete").ok,
        "classify": system.classify(),
        "drops": drops,
        "retransmissions": retransmissions,
        "merge_crashes": system.merge_processes[0].crashes,
        "merge_restores": system.merge_processes[0].restores,
        "fingerprint": system.metrics().to_dict(),
    }


def test_b17_faults(benchmark, report):
    def experiment():
        results = {}
        for rate in DROP_RATES:
            results[rate] = run_once(rate)
        results["crash"] = run_once(0.02, crash=True)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for key in (*DROP_RATES, "crash"):
        r = results[key]
        m = r["metrics"]
        label = "0.02+crash" if key == "crash" else f"{key:g}"
        rows.append([
            label,
            "yes" if r["mvc_ok"] else "NO",
            f"{m.mean_staleness:.2f}",
            f"{m.p95_staleness:.2f}",
            f"{m.throughput:.3f}",
            r["drops"],
            r["retransmissions"],
            r["merge_restores"],
        ])
    report("B17 — MVC under message faults (reliable channels on):")
    report(fmt_table(
        ["drop rate", "MVC", "mean stale", "p95 stale", "throughput",
         "drops", "retransmits", "restores"],
        rows,
    ))
    report("")
    report("Shape: recovery preserves MVC at every fault rate; staleness "
           "is the price, paid in retransmission round-trips.")

    # 1. Recovery works: every run, including the crash run, is consistent.
    for key in (*DROP_RATES, "crash"):
        assert results[key]["mvc_ok"], f"MVC lost at {key}"
        assert results[key]["classify"] == "complete"
        assert results[key]["metrics"].updates_committed == UPDATES

    # 2. Faults really fired, and recovery work scales with the rate.
    assert results[0.0]["drops"] == 0 and results[0.0]["retransmissions"] == 0
    assert results[0.01]["drops"] > 0
    assert results[0.05]["drops"] > results[0.01]["drops"]
    assert results[0.05]["retransmissions"] >= results[0.01]["retransmissions"]

    # 3. Retransmit latency costs freshness at the heaviest rate.
    assert (
        results[0.05]["metrics"].mean_staleness
        > results[0.0]["metrics"].mean_staleness
    )

    # 4. The crash scenario actually crashed and recovered.
    crash = results["crash"]
    assert crash["merge_crashes"] == 1 and crash["merge_restores"] == 1


def test_b17_determinism(benchmark, report):
    """Same plan, same seed: bit-identical metrics, run-to-run."""

    def experiment():
        return [
            (run_once(rate)["fingerprint"], run_once(rate)["fingerprint"])
            for rate in DROP_RATES
        ] + [(run_once(0.02, crash=True)["fingerprint"],
              run_once(0.02, crash=True)["fingerprint"])]

    pairs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    for first, second in pairs:
        assert first == second
    report("B17 determinism: identical metrics across repeated runs "
           f"for drop rates {DROP_RATES} and the crash scenario.")
