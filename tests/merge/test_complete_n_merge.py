"""Tests for the complete-N merge policy (§6.3)."""

import pytest

from repro.errors import MergeError
from repro.merge.complete_n import CompleteNMerge

from tests.conftest import make_al, unit_summary


@pytest.fixture
def merge() -> CompleteNMerge:
    return CompleteNMerge(("V1", "V2"), n=2)


class TestBlocks:
    def test_block_released_when_complete(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        merge.receive_rel(2, frozenset({"V2"}))
        assert merge.receive_action_list(make_al("V1", [1])) == []
        units = merge.receive_action_list(make_al("V2", [2]))
        assert unit_summary(units) == [((1, 2), ("V1", "V2"))]
        assert merge.idle()

    def test_block_waits_for_all_rels(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        # Block [1,2] cannot release before REL2 even if row 1 is ready.
        assert merge.receive_action_list(make_al("V1", [1])) == []
        units = merge.receive_rel(2, frozenset())
        # Only the relevant row is covered: an irrelevant update must not
        # be claimed by this merge (under §6.1 distribution another merge
        # may own it).
        assert unit_summary(units) == [((1,), ("V1",))]

    def test_blocks_release_in_order(self, merge):
        for row, views in ((1, {"V1"}), (2, set()), (3, {"V2"}), (4, set())):
            merge.receive_rel(row, frozenset(views))
        # Block 2's list arrives first; it must wait for block 1.
        assert merge.receive_action_list(make_al("V2", [3])) == []
        units = merge.receive_action_list(make_al("V1", [1]))
        assert [u.rows for u in units] == [(1,), (3,)]

    def test_al_spanning_blocks_rejected(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        merge.receive_rel(2, frozenset({"V1"}))
        merge.receive_rel(3, frozenset({"V1"}))
        with pytest.raises(MergeError, match="spans blocks"):
            merge.receive_action_list(make_al("V1", [2, 3]))

    def test_batched_within_block_allowed(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        merge.receive_rel(2, frozenset({"V1"}))
        units = merge.receive_action_list(make_al("V1", [1, 2]))
        assert unit_summary(units) == [((1, 2), ("V1",))]

    def test_duplicate_entry_rejected(self, merge):
        # Keep the block open (no REL2) so row 1 stays in the table.
        merge.receive_rel(1, frozenset({"V1"}))
        merge.receive_action_list(make_al("V1", [1], manager="a"))
        with pytest.raises(MergeError, match="expected white"):
            merge.receive_action_list(make_al("V1", [1], manager="b"))


class TestFlush:
    def test_flush_trailing_partial_block(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        merge.receive_rel(2, frozenset({"V1"}))
        merge.receive_rel(3, frozenset({"V1"}))  # block 2 never closes
        merge.receive_action_list(make_al("V1", [1, 2]))
        assert merge.receive_action_list(make_al("V1", [3])) == []
        units = merge.flush()
        assert unit_summary(units) == [((3,), ("V1",))]
        assert merge.idle()

    def test_flush_with_missing_lists_rejected(self, merge):
        merge.receive_rel(1, frozenset({"V1"}))
        with pytest.raises(MergeError, match="still waits"):
            merge.flush()

    def test_flush_nothing_is_noop(self, merge):
        assert merge.flush() == []

    def test_bad_n_rejected(self):
        with pytest.raises(MergeError):
            CompleteNMerge(("V1",), n=0)
