"""Tests for the ViewUpdateTable."""

import pytest

from repro.errors import MergeError
from repro.merge.vut import Color, Entry, ViewUpdateTable


@pytest.fixture
def vut() -> ViewUpdateTable:
    return ViewUpdateTable(("V1", "V2", "V3"))


class TestStructure:
    def test_needs_views(self):
        with pytest.raises(MergeError):
            ViewUpdateTable(())

    def test_duplicate_views_rejected(self):
        with pytest.raises(MergeError):
            ViewUpdateTable(("V1", "V1"))

    def test_allocate_row_colors(self, vut):
        vut.allocate_row(1, frozenset({"V1", "V2"}))
        assert vut.color(1, "V1") is Color.WHITE
        assert vut.color(1, "V2") is Color.WHITE
        assert vut.color(1, "V3") is Color.BLACK

    def test_allocate_duplicate_row(self, vut):
        vut.allocate_row(1, frozenset())
        with pytest.raises(MergeError):
            vut.allocate_row(1, frozenset())

    def test_allocate_unknown_view(self, vut):
        with pytest.raises(MergeError):
            vut.allocate_row(1, frozenset({"Vx"}))

    def test_sparse_rows(self, vut):
        vut.allocate_row(3, frozenset({"V1"}))
        vut.allocate_row(7, frozenset({"V2"}))
        assert vut.row_ids == (3, 7)
        assert 3 in vut and 5 not in vut

    def test_missing_entry_raises(self, vut):
        with pytest.raises(MergeError):
            vut.color(9, "V1")


class TestColorsAndState:
    def test_set_color(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        vut.set_color(1, "V1", Color.RED)
        assert vut.color(1, "V1") is Color.RED

    def test_state_defaults_to_zero(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        assert vut.state(1, "V1") == 0
        vut.set_state(1, "V1", 3)
        assert vut.state(1, "V1") == 3

    def test_views_with_color(self, vut):
        vut.allocate_row(1, frozenset({"V1", "V3"}))
        vut.set_color(1, "V1", Color.RED)
        assert vut.views_with_color(1, Color.RED) == ("V1",)
        assert vut.views_with_color(1, Color.WHITE) == ("V3",)

    def test_has_color(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        assert vut.has_color(1, Color.WHITE)
        assert not vut.has_color(1, Color.RED)


class TestQueries:
    def test_next_red(self, vut):
        for row in (1, 2, 3):
            vut.allocate_row(row, frozenset({"V1"}))
        vut.set_color(3, "V1", Color.RED)
        assert vut.next_red(1, "V1") == 3
        assert vut.next_red(3, "V1") == 0

    def test_earlier_red_rows(self, vut):
        for row in (1, 2, 3):
            vut.allocate_row(row, frozenset({"V1"}))
        vut.set_color(1, "V1", Color.RED)
        vut.set_color(2, "V1", Color.RED)
        assert vut.earlier_red_rows(3, "V1") == (1, 2)

    def test_white_rows_through(self, vut):
        for row in (1, 2, 3, 4):
            vut.allocate_row(row, frozenset({"V1"}))
        vut.set_color(2, "V1", Color.GRAY)
        assert vut.white_rows_through(3, "V1") == (1, 3)

    def test_rows_before_after(self, vut):
        for row in (2, 4, 6):
            vut.allocate_row(row, frozenset())
        assert list(vut.rows_before(5)) == [2, 4]
        assert list(vut.rows_after(3)) == [4, 6]


class TestPurging:
    def test_purgeable(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        assert not vut.purgeable(1)
        vut.set_color(1, "V1", Color.GRAY)
        assert vut.purgeable(1)

    def test_purge_rejects_active_row(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        with pytest.raises(MergeError):
            vut.purge(1)

    def test_purge(self, vut):
        vut.allocate_row(1, frozenset())
        vut.purge(1)
        assert len(vut) == 0

    def test_purge_completed(self, vut):
        vut.allocate_row(1, frozenset())
        vut.allocate_row(2, frozenset({"V1"}))
        assert vut.purge_completed() == (1,)
        assert vut.row_ids == (2,)


class TestRendering:
    def test_snapshot(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        snap = vut.snapshot()
        assert snap[1]["V1"] == "(w,0)"
        assert snap[1]["V2"] == "(b,0)"

    def test_render_contains_rows(self, vut):
        vut.allocate_row(1, frozenset({"V1"}))
        text = vut.render()
        assert "U1" in text and "V1" in text

    def test_entry_str(self):
        assert str(Entry(Color.RED, 3)) == "(r,3)"
