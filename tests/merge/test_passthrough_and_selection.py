"""Tests for the pass-through merge and the weakest-level selection rule."""

import pytest

from repro.errors import MergeError
from repro.merge.pa import PaintingAlgorithm
from repro.merge.passthrough import PassThroughMerge
from repro.merge.selection import choose_algorithm, weakest_level
from repro.merge.spa import SimplePaintingAlgorithm

from tests.conftest import empty_al, make_al, unit_summary


class TestPassThrough:
    def test_forwards_immediately(self):
        merge = PassThroughMerge(("V1",))
        units = merge.receive_action_list(make_al("V1", [1]))
        assert unit_summary(units) == [((1,), ("V1",))]

    def test_ignores_rels(self):
        merge = PassThroughMerge(("V1",))
        assert merge.receive_rel(1, frozenset({"V1"})) == []

    def test_accepts_out_of_order_lists(self):
        """Convergent managers may emit several lists per update."""
        merge = PassThroughMerge(("V1",))
        merge.receive_action_list(make_al("V1", [2], manager="m"))
        units = merge.receive_action_list(make_al("V1", [2], manager="m", tag=1))
        assert len(units) == 1

    def test_drops_empty_lists(self):
        merge = PassThroughMerge(("V1",))
        assert merge.receive_action_list(empty_al("V1", [1])) == []

    def test_always_idle(self):
        assert PassThroughMerge(("V1",)).idle()


class TestWeakestLevel:
    def test_ordering(self):
        assert weakest_level(["complete", "strong"]) == "strong"
        assert weakest_level(["strong", "convergent"]) == "convergent"
        assert weakest_level(["complete"]) == "complete"
        assert weakest_level(["complete", "complete-n"]) == "complete-n"
        assert weakest_level(["broken", "complete"]) == "broken"

    def test_empty_rejected(self):
        with pytest.raises(MergeError):
            weakest_level([])

    def test_unknown_level_rejected(self):
        with pytest.raises(MergeError):
            weakest_level(["amazing"])


class TestChooseAlgorithm:
    def test_all_complete_gives_spa(self):
        algorithm = choose_algorithm(("V1",), ["complete", "complete"])
        assert isinstance(algorithm, SimplePaintingAlgorithm)

    def test_any_strong_gives_pa(self):
        algorithm = choose_algorithm(("V1",), ["complete", "strong"])
        assert isinstance(algorithm, PaintingAlgorithm)

    def test_complete_n_gives_pa(self):
        algorithm = choose_algorithm(("V1",), ["complete-n"])
        assert isinstance(algorithm, PaintingAlgorithm)

    def test_any_convergent_gives_passthrough(self):
        algorithm = choose_algorithm(("V1",), ["strong", "convergent"])
        assert isinstance(algorithm, PassThroughMerge)
