"""Tests for the simulated merge process wrapper."""

import pytest

from repro.errors import MergeError
from repro.merge.process import MergeProcess
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.submission import SequentialPolicy
from repro.messages import (
    ActionListMessage,
    CommitNotification,
    RelMessage,
    WarehouseTransactionMsg,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process

from tests.conftest import make_al


class FakeWarehouse(Process):
    def __init__(self, sim):
        super().__init__(sim, "warehouse")
        self.received = []

    def handle(self, message, sender):
        assert isinstance(message, WarehouseTransactionMsg)
        self.received.append(message)


class Driver(Process):
    def __init__(self, sim):
        super().__init__(sim, "driver")

    def handle(self, message, sender):
        pass


@pytest.fixture
def rig():
    sim = Simulator()
    warehouse = FakeWarehouse(sim)
    merge = MergeProcess(
        sim,
        SimplePaintingAlgorithm(("V1",)),
        name="merge",
        policy=SequentialPolicy(),
    )
    merge.connect(warehouse, 1.0)
    driver = Driver(sim)
    driver.connect(merge, 0.0)
    return sim, warehouse, merge, driver


class TestMergeProcess:
    def test_ready_unit_becomes_numbered_txn(self, rig):
        sim, warehouse, merge, driver = rig
        sim.schedule(0.0, driver.send, "merge", RelMessage(1, frozenset({"V1"})))
        sim.schedule(
            0.1, driver.send, "merge", ActionListMessage(make_al("V1", [1]))
        )
        sim.run()
        assert len(warehouse.received) == 1
        txn = warehouse.received[0].txn
        assert txn.txn_id == 1
        assert txn.covered_rows == (1,)
        assert txn.merge_name == "merge"

    def test_commit_notification_reaches_policy(self, rig):
        sim, warehouse, merge, driver = rig
        for row in (1, 2):
            sim.schedule(0.0, driver.send, "merge", RelMessage(row, frozenset({"V1"})))
        sim.schedule(0.1, driver.send, "merge", ActionListMessage(make_al("V1", [1])))
        sim.schedule(0.2, driver.send, "merge", ActionListMessage(make_al("V1", [2])))
        sim.run()
        assert len(warehouse.received) == 1  # sequential: 2nd waits
        sim.schedule(0.0, driver.send, "merge", CommitNotification(1, sim.now))
        sim.run()
        assert len(warehouse.received) == 2

    def test_txn_id_stride_for_distributed_merges(self):
        sim = Simulator()
        warehouse = FakeWarehouse(sim)
        merge = MergeProcess(
            sim,
            SimplePaintingAlgorithm(("V1",)),
            name="merge1",
            txn_id_start=2,
            txn_id_step=3,
        )
        merge.connect(warehouse, 0.0)
        assert merge._allocate_txn_id() == 2
        assert merge._allocate_txn_id() == 5

    def test_unknown_message_rejected(self, rig):
        sim, _warehouse, merge, driver = rig
        sim.schedule(0.0, driver.send, "merge", "garbage")
        with pytest.raises(MergeError):
            sim.run()

    def test_per_message_cost_delays_handling(self):
        sim = Simulator()
        warehouse = FakeWarehouse(sim)
        merge = MergeProcess(
            sim,
            SimplePaintingAlgorithm(("V1",)),
            name="merge",
            per_message_cost=5.0,
        )
        merge.connect(warehouse, 0.0)
        driver = Driver(sim)
        driver.connect(merge, 0.0)
        sim.schedule(0.0, driver.send, "merge", RelMessage(1, frozenset({"V1"})))
        sim.schedule(0.0, driver.send, "merge", ActionListMessage(make_al("V1", [1])))
        sim.run()
        # Two messages at 5.0 each -> txn submitted at t=10, delivered t=10.
        assert sim.now >= 10.0
        assert merge.busy_time == 10.0

    def test_vut_size_traced(self, rig):
        sim, _warehouse, merge, driver = rig
        sim.schedule(0.0, driver.send, "merge", RelMessage(1, frozenset({"V1"})))
        sim.run()
        events = sim.trace.of_kind("vut_size")
        assert events and events[-1].detail["size"] == 1

    def test_flush_releases_algorithm_and_policy_holdings(self):
        """flush() drains complete-N trailing blocks AND batched policies."""
        from repro.merge.complete_n import CompleteNMerge
        from repro.merge.submission import BatchingPolicy

        sim = Simulator()
        warehouse = FakeWarehouse(sim)
        merge = MergeProcess(
            sim,
            CompleteNMerge(("V1",), n=4),
            name="merge",
            policy=BatchingPolicy(batch_size=10),
        )
        merge.connect(warehouse, 0.0)
        driver = Driver(sim)
        driver.connect(merge, 0.0)
        # Two updates: block [1..4] never closes, batch of 10 never fills.
        for row in (1, 2):
            sim.schedule(0.0, driver.send, "merge", RelMessage(row, frozenset({"V1"})))
            sim.schedule(
                0.1, driver.send, "merge",
                ActionListMessage(make_al("V1", [row])),
            )
        sim.run()
        assert warehouse.received == []
        merge.flush()
        sim.run()
        assert len(warehouse.received) == 1
        assert warehouse.received[0].txn.covered_rows == (1, 2)
        assert merge.idle()

    def test_idle(self, rig):
        sim, _warehouse, merge, driver = rig
        assert merge.idle()
        sim.schedule(0.0, driver.send, "merge", RelMessage(1, frozenset({"V1"})))
        sim.run()
        assert not merge.idle()


class TestCheckpointRecovery:
    """Crash/restart with checkpoints + reliable channels loses nothing."""

    @staticmethod
    def build(sim, crash_at=None, restart_after=3.0):
        from repro.merge.submission import EagerPolicy
        from repro.sim.network import ReliableChannel

        warehouse = FakeWarehouse(sim)
        merge = MergeProcess(
            sim,
            SimplePaintingAlgorithm(("V1",)),
            name="merge",
            policy=EagerPolicy(),
            per_message_cost=0.2,
            checkpointing=True,
        )
        merge.attach(ReliableChannel(sim, merge, warehouse, latency=1.0))
        driver = Driver(sim)
        driver.attach(ReliableChannel(sim, driver, merge, latency=0.5))
        for row in range(1, 6):
            sim.schedule(float(row), driver.send, "merge",
                         RelMessage(row, frozenset({"V1"})))
            sim.schedule(float(row) + 0.25, driver.send, "merge",
                         ActionListMessage(make_al("V1", [row])))
        if crash_at is not None:
            sim.schedule_at(crash_at, merge.crash)
            sim.schedule_at(crash_at + restart_after, merge.restart)
        return warehouse, merge, driver

    def test_checkpoints_taken_per_handled_message(self):
        sim = Simulator()
        warehouse, merge, _driver = self.build(sim)
        sim.run()
        assert merge.checkpoints_taken == merge.messages_handled
        assert merge.checkpoints_taken > 0

    def test_crash_mid_stream_loses_no_transactions(self):
        clean_sim = Simulator()
        clean_wh, _m, _d = self.build(clean_sim)
        clean_sim.run()

        crashed_sim = Simulator()
        crashed_wh, merge, _d = self.build(crashed_sim, crash_at=3.1)
        crashed_sim.run()

        assert merge.crashes == 1 and merge.restores == 1
        summary = [
            (m.txn.txn_id, m.txn.covered_rows) for m in crashed_wh.received
        ]
        clean_summary = [
            (m.txn.txn_id, m.txn.covered_rows) for m in clean_wh.received
        ]
        assert summary == clean_summary  # same txns, same ids, no dup/loss
        assert len(summary) == 5

    def test_restart_without_checkpoint_stays_pristine(self):
        sim = Simulator()
        merge = MergeProcess(
            sim, SimplePaintingAlgorithm(("V1",)), name="merge",
        )
        merge.crash()
        merge.restart()  # no checkpoint ever taken: must not blow up
        assert merge.restores == 0

    def test_checkpoint_is_isolated_from_live_state(self):
        """Mutating the live algorithm after a checkpoint must not leak into
        the snapshot (deepcopy, not aliasing)."""
        sim = Simulator()
        merge = MergeProcess(
            sim, SimplePaintingAlgorithm(("V1",)), name="merge",
            checkpointing=True,
        )
        checkpoint = merge.take_checkpoint()
        merge.algorithm.receive_rel(1, frozenset({"V1"}))
        assert len(merge.algorithm.vut) == 1
        assert len(checkpoint.algorithm.vut) == 0
        # And the policy is rebound to the live process after the deepcopy.
        assert merge.policy._submit is not None
