"""Sparse VUT rows: what a distributed merge process actually sees.

A merge process owning one §6.1 view group receives RELs only for updates
relevant to its group, so its row ids have gaps (global numbering, sparse
subset).  Both algorithms must order, cascade and purge correctly over
those gaps.
"""

from repro.merge.pa import PaintingAlgorithm
from repro.merge.spa import SimplePaintingAlgorithm

from tests.conftest import make_al, unit_summary


class TestSpaSparse:
    def test_gapped_rows_apply_in_order(self):
        spa = SimplePaintingAlgorithm(("V1",))
        for row in (5, 9, 12):
            spa.receive_rel(row, frozenset({"V1"}))
        assert spa.receive_action_list(make_al("V1", [5])) != []
        assert spa.receive_action_list(make_al("V1", [9])) != []
        units = spa.receive_action_list(make_al("V1", [12]))
        assert unit_summary(units) == [((12,), ("V1",))]
        assert spa.idle()

    def test_gapped_cascade(self):
        spa = SimplePaintingAlgorithm(("V1", "V2"))
        spa.receive_rel(3, frozenset({"V1", "V2"}))
        spa.receive_rel(8, frozenset({"V1"}))
        spa.receive_rel(21, frozenset({"V1"}))
        assert spa.receive_action_list(make_al("V1", [3])) == []
        assert spa.receive_action_list(make_al("V1", [8])) == []
        assert spa.receive_action_list(make_al("V1", [21])) == []
        units = spa.receive_action_list(make_al("V2", [3]))
        assert [u.rows for u in units] == [(3,), (8,), (21,)]

    def test_pending_al_released_by_gapped_rel(self):
        spa = SimplePaintingAlgorithm(("V1",))
        # AL for update 7 arrives before any REL; REL stream has gaps.
        assert spa.receive_action_list(make_al("V1", [7])) == []
        assert spa.pending_action_lists == 1
        units = spa.receive_rel(7, frozenset({"V1"}))
        assert unit_summary(units) == [((7,), ("V1",))]


class TestPaSparse:
    def test_gapped_batch(self):
        pa = PaintingAlgorithm(("V1",))
        for row in (4, 11, 30):
            pa.receive_rel(row, frozenset({"V1"}))
        units = pa.receive_action_list(make_al("V1", [4, 11, 30]))
        assert unit_summary(units) == [((4, 11, 30), ("V1",))]
        assert pa.idle()

    def test_gapped_group_closure(self):
        pa = PaintingAlgorithm(("V1", "V2"))
        pa.receive_rel(10, frozenset({"V1", "V2"}))
        pa.receive_rel(20, frozenset({"V1"}))
        assert pa.receive_action_list(make_al("V1", [10, 20])) == []
        units = pa.receive_action_list(make_al("V2", [10]))
        assert [u.rows for u in units] == [(10, 20)]

    def test_state_pointers_across_gaps(self):
        pa = PaintingAlgorithm(("V1",))
        pa.receive_rel(100, frozenset({"V1"}))
        pa.receive_rel(205, frozenset({"V1"}))
        pa.receive_action_list(make_al("V1", [100, 205]))
        assert pa.idle()
