"""Property-based tests: the painting algorithms under random interleavings.

For any relevance pattern and any legal arrival order of REL and AL
messages, SPA and PA must

* emit every action list exactly once, grouped into atomic units;
* never apply two lists from one manager out of order;
* apply each row only after all its lists arrived (atomicity);
* finish idle (promptness: nothing held once the stream completes);
* SPA: one row per unit (completeness); PA: batched rows stay together.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.merge.pa import PaintingAlgorithm
from repro.merge.spa import SimplePaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList

VIEWS = ("V1", "V2", "V3")


@st.composite
def relevance_patterns(draw):
    """For each update id 1..n, the set of relevant views (may be empty)."""
    n = draw(st.integers(min_value=1, max_value=8))
    return [
        frozenset(
            v for v in VIEWS if draw(st.booleans())
        )
        for _ in range(n)
    ]


def make_lists_complete(pattern):
    """One AL per (update, relevant view)."""
    lists = []
    for index, views in enumerate(pattern, start=1):
        for view in views:
            lists.append(
                ActionList.from_delta(
                    view, view, (index,), Delta.insert(Row(u=index, v=hash(view) % 97))
                )
            )
    return lists


@st.composite
def complete_scenarios(draw):
    """A relevance pattern plus a legal arrival interleaving.

    Legal = RELs in id order (FIFO from the integrator), each manager's
    lists in id order (FIFO from the manager), arbitrary interleaving
    otherwise — including ALs before their REL.
    """
    pattern = draw(relevance_patterns())
    streams = {"rel": [("rel", i + 1, views) for i, views in enumerate(pattern)]}
    for view in VIEWS:
        stream = [
            ("al", al)
            for al in make_lists_complete(pattern)
            if al.view == view
        ]
        if stream:
            streams[view] = stream
    events = []
    cursors = {k: 0 for k in streams}
    remaining = sum(len(s) for s in streams.values())
    while remaining:
        candidates = [k for k, c in cursors.items() if c < len(streams[k])]
        key = draw(st.sampled_from(sorted(candidates)))
        events.append(streams[key][cursors[key]])
        cursors[key] += 1
        remaining -= 1
    return pattern, events


def drive(algorithm, events):
    units = []
    for event in events:
        if event[0] == "rel":
            units.extend(algorithm.receive_rel(event[1], event[2]))
        else:
            units.extend(algorithm.receive_action_list(event[1]))
    return units


def check_common_invariants(pattern, units):
    # Every (update, view) list applied exactly once.
    applied = [
        (row, al.view)
        for unit in units
        for al in unit.action_lists
        for row in al.covered
    ]
    expected = [
        (i + 1, v) for i, views in enumerate(pattern) for v in sorted(views)
    ]
    assert sorted(applied) == sorted(expected)
    # Per-manager lists applied in id order.
    seen: dict[str, int] = {}
    for unit in units:
        for al in unit.action_lists:
            assert seen.get(al.manager, 0) < al.covered[0]
            seen[al.manager] = al.last_update
    # Atomicity: a unit contains all lists of each covered row.
    for unit in units:
        rows = set(unit.rows)
        for row in rows:
            wanted = pattern[row - 1]
            got = {al.view for al in unit.action_lists if row in al.covered}
            assert got == wanted
    # Same-view rows must be applied in increasing order across units.
    last_by_view: dict[str, int] = {}
    for unit in units:
        for al in unit.action_lists:
            for row in al.covered:
                assert last_by_view.get(al.view, 0) < row
            last_by_view[al.view] = max(
                last_by_view.get(al.view, 0), al.last_update
            )


@given(scenario=complete_scenarios())
@settings(max_examples=120, deadline=None)
def test_spa_invariants_under_any_arrival_order(scenario):
    pattern, events = scenario
    spa = SimplePaintingAlgorithm(VIEWS)
    units = drive(spa, events)
    check_common_invariants(pattern, units)
    # Completeness: one row per unit.
    assert all(len(unit.rows) == 1 for unit in units)
    # Promptness baseline: nothing held at the end.
    assert spa.idle()


@st.composite
def strong_scenarios(draw):
    """Like complete_scenarios, but managers may batch consecutive updates."""
    pattern = draw(relevance_patterns())
    streams = {"rel": [("rel", i + 1, views) for i, views in enumerate(pattern)]}
    for view in VIEWS:
        relevant_ids = [
            i + 1 for i, views in enumerate(pattern) if view in views
        ]
        position = 0
        stream = []
        while position < len(relevant_ids):
            size = draw(st.integers(min_value=1, max_value=3))
            batch = tuple(relevant_ids[position:position + size])
            position += len(batch)
            stream.append(
                (
                    "al",
                    ActionList.from_delta(
                        view, view, batch, Delta.insert(Row(u=batch[-1]))
                    ),
                )
            )
        if stream:
            streams[view] = stream
    events = []
    cursors = {k: 0 for k in streams}
    remaining = sum(len(s) for s in streams.values())
    while remaining:
        candidates = [k for k, c in cursors.items() if c < len(streams[k])]
        key = draw(st.sampled_from(sorted(candidates)))
        events.append(streams[key][cursors[key]])
        cursors[key] += 1
        remaining -= 1
    return pattern, events


@given(scenario=strong_scenarios())
@settings(max_examples=120, deadline=None)
def test_pa_invariants_under_any_arrival_order_and_batching(scenario):
    pattern, events = scenario
    pa = PaintingAlgorithm(VIEWS)
    units = drive(pa, events)
    check_common_invariants(pattern, units)
    # Batches stay atomic: all rows of one AL are in the same unit.
    for unit in units:
        rows = set(unit.rows)
        for al in unit.action_lists:
            assert set(al.covered) <= rows
    assert pa.idle()


@given(scenario=complete_scenarios())
@settings(max_examples=60, deadline=None)
def test_pa_handles_complete_managers_too(scenario):
    """PA degrades gracefully to per-update lists (§6.3 mixed fleets)."""
    pattern, events = scenario
    pa = PaintingAlgorithm(VIEWS)
    units = drive(pa, events)
    check_common_invariants(pattern, units)
    assert pa.idle()
