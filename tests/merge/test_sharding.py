"""Tests for consistent-hash shard placement (§6.1 at scale)."""

import pytest

from repro.errors import MergeError
from repro.merge.distributed import partition_views, view_to_group_map
from repro.merge.sharding import (
    ShardRouter,
    shard_view_groups,
    stable_hash,
)
from repro.relational.expressions import BaseRelation, Join, ViewDefinition
from repro.relational.parser import parse_view
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_views_example3, paper_world


def clusters(n, views_per=1):
    """n relation-disjoint components, each with `views_per` views."""
    defs = []
    for i in range(n):
        for j in range(views_per):
            defs.append(
                ViewDefinition(
                    f"V{i:03d}_{j}",
                    Join(
                        BaseRelation(f"rel{i}a"), BaseRelation(f"rel{i}b")
                    ),
                )
            )
    return defs


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("shard0#1") == stable_hash("shard0#1")

    def test_spread(self):
        values = {stable_hash(f"k{i}") for i in range(100)}
        assert len(values) == 100


class TestShardRouter:
    def test_rejects_bad_fleet(self):
        with pytest.raises(MergeError):
            ShardRouter([])
        with pytest.raises(MergeError):
            ShardRouter(["a", "a"])
        with pytest.raises(MergeError):
            ShardRouter(["a"], replicas=0)
        with pytest.raises(MergeError):
            ShardRouter(["a"], load_slack=-0.1)

    def test_membership_errors(self):
        router = ShardRouter(["a", "b"])
        with pytest.raises(MergeError):
            router.add_shard("a")
        with pytest.raises(MergeError):
            router.remove_shard("zzz")
        router.remove_shard("b")
        with pytest.raises(MergeError):
            router.remove_shard("a")

    def test_deterministic_placement(self):
        groups = [tuple(sorted(g)) for g in (("A", "B"), ("C",), ("D",))]
        one = ShardRouter(["s0", "s1"]).assign(groups)
        two = ShardRouter(["s0", "s1"]).assign(list(reversed(groups)))
        assert one == two

    def test_every_group_placed(self):
        groups = [(f"V{i:03d}",) for i in range(50)]
        placement = ShardRouter(["s0", "s1", "s2"]).assign(groups)
        assert set(placement) == set(groups)
        assert set(placement.values()) <= {"s0", "s1", "s2"}

    def test_cost_bounded_balance(self):
        """16 equal-cost groups over 8 shards: capacity (1.25 * 16/8 = 2.5)
        forces exactly two groups per shard."""
        groups = [(f"V{i:03d}",) for i in range(16)]
        costs = {f"V{i:03d}": 1.0 for i in range(16)}
        router = ShardRouter([f"s{i}" for i in range(8)])
        per_shard = {}
        for _group, shard in router.assign(groups, costs).items():
            per_shard[shard] = per_shard.get(shard, 0) + 1
        assert sorted(per_shard.values()) == [2] * 8

    def test_balances_cost_not_count(self):
        """One shard must not take all the heavy groups: the bounded-load
        walk fills by summed cost."""
        heavy = [(f"H{i}",) for i in range(4)]
        light = [(f"L{i:02d}",) for i in range(12)]
        costs = {g[0]: 10.0 for g in heavy}
        costs.update({g[0]: 1.0 for g in light})
        router = ShardRouter(["s0", "s1"], load_slack=0.1)
        placement = router.assign(heavy + light, costs)
        cost_per_shard = {"s0": 0.0, "s1": 0.0}
        for group, shard in placement.items():
            cost_per_shard[shard] += costs[group[0]]
        total = sum(cost_per_shard.values())
        assert max(cost_per_shard.values()) <= 1.1 * total / 2 + 10.0

    def test_stability_under_shard_add(self):
        """Adding a shard moves only groups whose ring interval changed —
        far fewer than a modulo-hash reshuffle (which moves ~ (n-1)/n)."""
        groups = [(f"V{i:03d}",) for i in range(200)]
        router = ShardRouter([f"s{i}" for i in range(4)], load_slack=10.0)
        before = router.assign(groups)
        router.add_shard("s4")
        after = router.assign(groups)
        moved = sum(1 for g in groups if before[g] != after[g])
        # the new shard owns ~1/5 of the ring; allow generous slop but
        # require far less churn than the ~4/5 modulo hashing causes.
        assert moved < 100
        # groups that moved went to the new shard (pure ring lookup, since
        # the huge slack disables the load bound).
        assert all(after[g] == "s4" for g in groups if before[g] != after[g])

    def test_stability_under_group_churn(self):
        """Dropping one group never moves the others (huge slack: pure
        consistent hashing)."""
        groups = [(f"V{i:03d}",) for i in range(50)]
        router = ShardRouter(["s0", "s1", "s2"], load_slack=10.0)
        before = router.assign(groups)
        after = router.assign(groups[1:])
        assert all(after[g] == before[g] for g in groups[1:])

    def test_assignments_rollup(self):
        groups = [("A", "B"), ("C",)]
        costs = {"A": 1.0, "B": 2.0, "C": 4.0}
        rollup = ShardRouter(["s0"]).assignments(groups, costs)
        assert len(rollup) == 1
        assert rollup[0].shard == "s0"
        assert rollup[0].views == ("A", "B", "C")
        assert rollup[0].cost == pytest.approx(7.0)


class TestShardViewGroups:
    def test_rejects_bad_shards(self):
        with pytest.raises(MergeError):
            shard_view_groups(clusters(2), shards=0)

    def test_single_shard_merges_everything(self):
        defs = clusters(5)
        groups = shard_view_groups(defs, shards=1)
        assert len(groups) == 1
        assert len(groups[0]) == 5

    def test_coverage_and_disjointness(self):
        defs = clusters(20, views_per=2)
        groups = shard_view_groups(defs, shards=4)
        assert 1 <= len(groups) <= 4
        names = [v for g in groups for v in g]
        assert sorted(names) == sorted(d.name for d in defs)
        assert len(set(names)) == len(names)

    def test_respects_component_boundaries(self):
        """Views of one connected component always land on one shard."""
        defs = clusters(10, views_per=3)
        components = partition_views(defs)
        by_view = view_to_group_map(shard_view_groups(defs, shards=4))
        for component in components:
            shards_hit = {by_view[v] for v in component}
            assert len(shards_hit) == 1

    def test_more_shards_than_components(self):
        defs = clusters(3)
        groups = shard_view_groups(defs, shards=8)
        assert 1 <= len(groups) <= 3

    def test_single_component_short_circuit(self):
        defs = [
            parse_view("A = SELECT * FROM X JOIN Y"),
            parse_view("B = SELECT * FROM Y JOIN Z"),
        ]
        assert shard_view_groups(defs, shards=4) == [("A", "B")]


class TestBuilderIntegration:
    def test_hash_router_round_trips_through_builder(self):
        """SystemConfig(merge_router='hash') wires the router's placement
        into view_to_merge."""
        config = SystemConfig(
            manager_kind="complete",
            merge_algorithm="spa",
            merge_groups=2,
            merge_router="hash",
        )
        system = WarehouseSystem(
            paper_world(), paper_views_example3(), config
        )
        expected = shard_view_groups(system.definitions, shards=2)
        by_view = view_to_group_map(expected)
        # builder's routing map matches the router's placement: views in
        # the same router group share a merge process, cross-group views
        # never do.
        for first in by_view:
            for second in by_view:
                same_merge = (
                    system.view_to_merge[first]
                    == system.view_to_merge[second]
                )
                assert same_merge == (by_view[first] == by_view[second])
        assert len(system.merge_processes) == len(expected)
