"""Tests for the Simple Painting Algorithm, including the paper's traces."""

import pytest

from repro.errors import MergeError
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.vut import Color

from tests.conftest import empty_al, make_al, unit_summary


@pytest.fixture
def spa() -> SimplePaintingAlgorithm:
    return SimplePaintingAlgorithm(("V1", "V2", "V3"))


class TestBasicFlow:
    def test_row_applies_when_all_lists_arrive(self, spa):
        assert spa.receive_rel(1, frozenset({"V1", "V2"})) == []
        assert spa.receive_action_list(make_al("V1", [1])) == []
        units = spa.receive_action_list(make_al("V2", [1]))
        assert unit_summary(units) == [((1,), ("V1", "V2"))]
        assert spa.idle()

    def test_row_irrelevant_to_all_views_purges_silently(self, spa):
        assert spa.receive_rel(1, frozenset()) == []
        assert spa.idle()

    def test_empty_action_lists_still_apply(self, spa):
        spa.receive_rel(1, frozenset({"V1"}))
        units = spa.receive_action_list(empty_al("V1", [1]))
        # A no-effect transaction is still emitted so commit ordering and
        # schedule reconstruction see the row.
        assert unit_summary(units) == [((1,), ("V1",))]

    def test_al_before_rel_is_held(self, spa):
        assert spa.receive_action_list(make_al("V1", [1])) == []
        assert spa.pending_action_lists == 1
        units = spa.receive_rel(1, frozenset({"V1"}))
        assert unit_summary(units) == [((1,), ("V1",))]
        assert spa.pending_action_lists == 0

    def test_same_manager_order_enforced(self, spa):
        spa.receive_rel(1, frozenset({"V1"}))
        spa.receive_rel(2, frozenset({"V1"}))
        spa.receive_action_list(make_al("V1", [2], manager="m1"))
        with pytest.raises(MergeError, match="overlaps an earlier list"):
            # Same manager cannot send an earlier update after a later one.
            spa.receive_action_list(make_al("V1", [1], manager="m1"))

    def test_rels_must_increase(self, spa):
        spa.receive_rel(2, frozenset({"V1"}))
        with pytest.raises(MergeError):
            spa.receive_rel(1, frozenset({"V1"}))

    def test_unknown_view_in_rel(self, spa):
        with pytest.raises(MergeError):
            spa.receive_rel(1, frozenset({"Vx"}))

    def test_al_for_black_entry_rejected(self, spa):
        spa.receive_rel(1, frozenset({"V2"}))
        with pytest.raises(MergeError, match="expected white"):
            spa.receive_action_list(make_al("V1", [1]))

    def test_strict_rejects_batched_lists(self, spa):
        spa.receive_rel(1, frozenset({"V1"}))
        spa.receive_rel(2, frozenset({"V1"}))
        with pytest.raises(MergeError, match="Painting Algorithm"):
            spa.receive_action_list(make_al("V1", [1, 2]))


class TestDirectProcessRow:
    """Regression: ``_emitted`` must exist from construction — the crash
    recovery path calls ``_process_row`` without a receive_* event first."""

    def test_emitted_initialised_empty(self):
        assert SimplePaintingAlgorithm(("V1",))._emitted == []

    def test_process_row_directly_without_prior_event(self):
        spa = SimplePaintingAlgorithm(("V1",))
        spa.vut.allocate_row(1, frozenset({"V1"}))
        spa.vut.set_color(1, "V1", Color.RED)
        spa._wt[1].append(make_al("V1", [1]))
        spa._process_row(1)  # used to raise AttributeError
        assert unit_summary(spa._emitted) == [((1,), ("V1",))]
        assert 1 not in spa.vut

    def test_process_row_on_missing_row_is_noop(self):
        spa = SimplePaintingAlgorithm(("V1",))
        spa._process_row(99)
        assert spa._emitted == []


class TestOrdering:
    def test_blocked_by_earlier_red_in_same_column(self, spa):
        """Row 2's V1 list cannot apply before row 1's V1 list."""
        spa.receive_rel(1, frozenset({"V1", "V2"}))
        spa.receive_rel(2, frozenset({"V1"}))
        assert spa.receive_action_list(make_al("V1", [1])) == []
        assert spa.receive_action_list(make_al("V1", [2])) == []
        # Completing row 1 releases both rows, in order.
        units = spa.receive_action_list(make_al("V2", [1]))
        assert unit_summary(units) == [((1,), ("V1", "V2")), ((2,), ("V1",))]

    def test_independent_later_row_applies_first(self, spa):
        """Example 3's t5 behaviour: disjoint rows apply out of order."""
        spa.receive_rel(1, frozenset({"V1", "V2"}))
        spa.receive_rel(2, frozenset({"V3"}))
        units = spa.receive_action_list(make_al("V3", [2]))
        assert unit_summary(units) == [((2,), ("V3",))]
        assert not spa.idle()  # row 1 still waiting

    def test_cascade_through_multiple_rows(self, spa):
        """Unblocking row 1 releases the whole same-column backlog in order.

        V1's lists arrive in order (FIFO) but row 1 is additionally blocked
        on V2; once V2's list lands, rows 1, 2, 3 cascade.
        """
        spa.receive_rel(1, frozenset({"V1", "V2"}))
        spa.receive_rel(2, frozenset({"V1"}))
        spa.receive_rel(3, frozenset({"V1"}))
        assert spa.receive_action_list(make_al("V1", [1])) == []
        assert spa.receive_action_list(make_al("V1", [2])) == []
        assert spa.receive_action_list(make_al("V1", [3])) == []
        units = spa.receive_action_list(make_al("V2", [1]))
        assert [u.rows for u in units] == [(1,), (2,), (3,)]
        assert spa.idle()


class TestPaperExample3:
    """The exact receipt order of Example 3, times t0..t11."""

    def test_full_trace(self):
        spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
        emitted = {}
        emitted["REL1"] = spa.receive_rel(1, frozenset({"V1", "V2"}))
        emitted["AL21"] = spa.receive_action_list(make_al("V2", [1]))
        emitted["REL2"] = spa.receive_rel(2, frozenset({"V3"}))
        emitted["REL3"] = spa.receive_rel(3, frozenset({"V2"}))
        emitted["AL32"] = spa.receive_action_list(make_al("V3", [2]))
        emitted["AL23"] = spa.receive_action_list(make_al("V2", [3]))
        emitted["AL11"] = spa.receive_action_list(make_al("V1", [1]))

        # t5: WT2 applied as soon as AL32 arrives (rows disjoint from 1).
        assert unit_summary(emitted["AL32"]) == [((2,), ("V3",))]
        # AL23 must wait: row 1's V2 list is still unapplied (red above).
        assert emitted["AL23"] == []
        # t9/t10: AL11 releases row 1, then row 3 cascades.
        assert unit_summary(emitted["AL11"]) == [
            ((1,), ("V1", "V2")),
            ((3,), ("V2",)),
        ]
        # t11: everything purged.
        assert spa.idle()
        assert len(spa.vut) == 0

    def test_vut_colors_mid_trace(self):
        """At t4 (after AL32): row1 has w/r/b, row2 has b/b/r."""
        spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
        spa.receive_rel(1, frozenset({"V1", "V2"}))
        spa.receive_action_list(make_al("V2", [1]))
        spa.receive_rel(2, frozenset({"V3"}))
        spa.receive_rel(3, frozenset({"V2"}))
        assert spa.vut.color(1, "V1") is Color.WHITE
        assert spa.vut.color(1, "V2") is Color.RED
        assert spa.vut.color(1, "V3") is Color.BLACK
        assert spa.vut.color(2, "V3") is Color.WHITE
        assert spa.vut.color(3, "V2") is Color.WHITE


class TestPaperExample4:
    """Non-strict SPA reproduces the incorrect behaviour PA exists to fix."""

    def test_spa_applies_row_without_batched_actions(self):
        spa = SimplePaintingAlgorithm(("V1", "V2", "V3"), strict=False)
        spa.receive_rel(1, frozenset({"V1", "V2"}))
        spa.receive_rel(2, frozenset({"V2", "V3"}))
        spa.receive_rel(3, frozenset({"V1", "V2"}))
        # A strongly consistent V1 manager batches U1 and U3 into AL13.
        assert spa.receive_action_list(make_al("V1", [1, 3])) == []
        # Now all other per-update lists for U1 and U2 arrive.
        units = []
        units += spa.receive_action_list(make_al("V2", [1]))
        units += spa.receive_action_list(make_al("V2", [2]))
        units += spa.receive_action_list(make_al("V3", [2]))
        # SPA wrongly applies row 1 WITHOUT V1's (batched) actions: the
        # transaction for row 1 contains only V2's list.
        row1_units = [u for u in units if u.rows == (1,)]
        assert row1_units, "naive SPA applied row 1"
        assert tuple(al.view for al in row1_units[0].action_lists) == ("V2",)


class TestStatistics:
    def test_counters(self, spa):
        spa.receive_rel(1, frozenset({"V1"}))
        spa.receive_action_list(make_al("V1", [1]))
        assert spa.rels_received == 1
        assert spa.als_received == 1
        assert spa.units_emitted == 1
