"""Tests for §6.1 view partitioning."""

import pytest

from repro.errors import MergeError
from repro.merge.distributed import group_for_view, partition_views
from repro.relational.parser import parse_view


def views(*texts):
    return [parse_view(t) for t in texts]


class TestPartition:
    def test_figure3_partition(self):
        """V1=R./S and V2=S./T share S; V3=Q stands alone."""
        defs = views(
            "V1 = SELECT * FROM R JOIN S",
            "V2 = SELECT * FROM S JOIN T",
            "V3 = SELECT * FROM Q",
        )
        assert partition_views(defs) == [("V1", "V2"), ("V3",)]

    def test_fully_disjoint(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert partition_views(defs) == [("A",), ("B",)]

    def test_fully_connected(self):
        defs = views(
            "A = SELECT * FROM X JOIN Y",
            "B = SELECT * FROM Y JOIN Z",
            "C = SELECT * FROM Z",
        )
        assert partition_views(defs) == [("A", "B", "C")]

    def test_transitive_sharing(self):
        defs = views(
            "A = SELECT * FROM X",
            "B = SELECT * FROM X JOIN Y",
            "C = SELECT * FROM Y",
            "D = SELECT * FROM W",
        )
        assert partition_views(defs) == [("A", "B", "C"), ("D",)]

    def test_empty_rejected(self):
        with pytest.raises(MergeError):
            partition_views([])

    def test_duplicate_names_rejected(self):
        defs = views("A = SELECT * FROM X", "A = SELECT * FROM Y")
        with pytest.raises(MergeError):
            partition_views(defs)


class TestCoalesce:
    def test_max_groups_merges_smallest(self):
        defs = views(
            "A = SELECT * FROM X",
            "B = SELECT * FROM Y",
            "C = SELECT * FROM Z",
        )
        groups = partition_views(defs, max_groups=2)
        assert len(groups) == 2
        assert sorted(v for g in groups for v in g) == ["A", "B", "C"]

    def test_max_groups_one_merges_all(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert partition_views(defs, max_groups=1) == [("A", "B")]

    def test_max_groups_larger_than_partition_is_noop(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert len(partition_views(defs, max_groups=10)) == 2


class TestGroupForView:
    def test_finds_group(self):
        groups = [("A", "B"), ("C",)]
        assert group_for_view(groups, "C") == ("C",)

    def test_missing_view(self):
        with pytest.raises(MergeError):
            group_for_view([("A",)], "Z")
