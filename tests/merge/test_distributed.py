"""Tests for §6.1 view partitioning."""

import pytest

from repro.errors import MergeError
from repro.merge.distributed import (
    estimate_plan_cost,
    group_for_view,
    partition_views,
    view_to_group_map,
)
from repro.relational.expressions import BaseRelation, Join, ViewDefinition
from repro.relational.parser import parse_view


def views(*texts):
    return [parse_view(t) for t in texts]


class TestPartition:
    def test_figure3_partition(self):
        """V1=R./S and V2=S./T share S; V3=Q stands alone."""
        defs = views(
            "V1 = SELECT * FROM R JOIN S",
            "V2 = SELECT * FROM S JOIN T",
            "V3 = SELECT * FROM Q",
        )
        assert partition_views(defs) == [("V1", "V2"), ("V3",)]

    def test_fully_disjoint(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert partition_views(defs) == [("A",), ("B",)]

    def test_fully_connected(self):
        defs = views(
            "A = SELECT * FROM X JOIN Y",
            "B = SELECT * FROM Y JOIN Z",
            "C = SELECT * FROM Z",
        )
        assert partition_views(defs) == [("A", "B", "C")]

    def test_transitive_sharing(self):
        defs = views(
            "A = SELECT * FROM X",
            "B = SELECT * FROM X JOIN Y",
            "C = SELECT * FROM Y",
            "D = SELECT * FROM W",
        )
        assert partition_views(defs) == [("A", "B", "C"), ("D",)]

    def test_empty_rejected(self):
        with pytest.raises(MergeError):
            partition_views([])

    def test_duplicate_names_rejected(self):
        defs = views("A = SELECT * FROM X", "A = SELECT * FROM Y")
        with pytest.raises(MergeError):
            partition_views(defs)

    def test_single_5000_view_component(self):
        """Regression: a ~5k-view connected component must not recurse.

        The old recursive ``_UnionFind.find`` compressed one parent hop
        per stack frame, so a single long chain of views sharing
        relations pairwise blew Python's recursion limit (~1000).
        """
        n = 5000
        defs = [
            ViewDefinition(
                f"V{i:04d}",
                Join(BaseRelation(f"rel{i}"), BaseRelation(f"rel{i + 1}")),
            )
            for i in range(n)
        ]
        groups = partition_views(defs)
        assert len(groups) == 1
        assert len(groups[0]) == n


class TestCoalesce:
    def test_max_groups_merges_smallest(self):
        defs = views(
            "A = SELECT * FROM X",
            "B = SELECT * FROM Y",
            "C = SELECT * FROM Z",
        )
        groups = partition_views(defs, max_groups=2)
        assert len(groups) == 2
        assert sorted(v for g in groups for v in g) == ["A", "B", "C"]

    def test_max_groups_one_merges_all(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert partition_views(defs, max_groups=1) == [("A", "B")]

    def test_max_groups_larger_than_partition_is_noop(self):
        defs = views("A = SELECT * FROM X", "B = SELECT * FROM Y")
        assert len(partition_views(defs, max_groups=10)) == 2


class TestEstimatePlanCost:
    def test_join_outweighs_scan(self):
        scan = views("A = SELECT * FROM Q")[0]
        join = views("B = SELECT * FROM R JOIN S")[0]
        assert estimate_plan_cost(join) > estimate_plan_cost(scan)

    def test_weights_accumulate(self):
        # Join(2.0) + two BaseRelations(1.0 each) = 4.0
        join = views("B = SELECT * FROM R JOIN S")[0]
        assert estimate_plan_cost(join) == pytest.approx(4.0)
        # Project(0.2) + Select(0.2) on top of the join
        spj = views("C = SELECT A FROM R JOIN S WHERE A < 3")[0]
        assert estimate_plan_cost(spj) == pytest.approx(4.4)

    def test_deeper_tree_costs_more(self):
        two_way = views("A = SELECT * FROM R JOIN S")[0]
        three_way = views("B = SELECT * FROM R JOIN S JOIN T")[0]
        assert estimate_plan_cost(three_way) > estimate_plan_cost(two_way)


class TestCostKeyedCoalesce:
    def test_heavy_groups_not_paired(self):
        """Two heavy join components must not be merged while cheap
        scan components exist — the heap is keyed by estimated cost,
        not view count."""
        defs = views(
            # heavy singleton components (three-way joins, cost 8.2 each)
            "H1 = SELECT * FROM R1 JOIN R2 JOIN R3",
            "H2 = SELECT * FROM S1 JOIN S2 JOIN S3",
            # cheap singleton components (bare scans, cost 1.0 each)
            "C1 = SELECT * FROM Q1",
            "C2 = SELECT * FROM Q2",
            "C3 = SELECT * FROM Q3",
        )
        groups = partition_views(defs, max_groups=3)
        assert len(groups) == 3
        by_view = view_to_group_map(groups)
        # the cheap scans coalesced together; each heavy view kept its
        # own merge process.
        assert by_view["H1"] == ("H1",)
        assert by_view["H2"] == ("H2",)
        assert by_view["C1"] == ("C1", "C2", "C3")


class TestViewToGroupMap:
    def test_round_trip(self):
        groups = [("A", "B"), ("C",)]
        mapping = view_to_group_map(groups)
        assert mapping == {"A": ("A", "B"), "B": ("A", "B"), "C": ("C",)}

    def test_empty(self):
        assert view_to_group_map([]) == {}


class TestGroupForView:
    def test_finds_group_but_warns(self):
        groups = [("A", "B"), ("C",)]
        with pytest.warns(DeprecationWarning, match="view_to_group_map"):
            assert group_for_view(groups, "C") == ("C",)

    def test_missing_view(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(MergeError):
                group_for_view([("A",)], "Z")
