"""Tests for the Painting Algorithm, including the paper's Example 5."""

import pytest

from repro.errors import MergeError
from repro.merge.pa import PaintingAlgorithm
from repro.merge.vut import Color

from tests.conftest import empty_al, make_al, unit_summary


@pytest.fixture
def pa() -> PaintingAlgorithm:
    return PaintingAlgorithm(("V1", "V2", "V3"))


class TestBasicFlow:
    def test_single_update_behaves_like_spa(self, pa):
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        assert pa.receive_action_list(make_al("V1", [1])) == []
        units = pa.receive_action_list(make_al("V2", [1]))
        assert unit_summary(units) == [((1,), ("V1", "V2"))]
        assert pa.idle()

    def test_batched_list_colors_all_covered_rows(self, pa):
        pa.receive_rel(1, frozenset({"V1"}))
        pa.receive_rel(2, frozenset({"V1"}))
        units = pa.receive_action_list(make_al("V1", [1, 2]))
        assert unit_summary(units) == [((1, 2), ("V1",))]

    def test_state_field_recorded(self, pa):
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        pa.receive_rel(2, frozenset({"V1"}))
        pa.receive_action_list(make_al("V1", [1, 2]))
        # Row 1 cannot apply (V2 white); entries point to state 2.
        assert pa.vut.state(1, "V1") == 2
        assert pa.vut.state(2, "V1") == 2
        assert pa.vut.color(1, "V1") is Color.RED

    def test_covered_mismatch_rejected(self, pa):
        pa.receive_rel(1, frozenset({"V1"}))
        pa.receive_rel(2, frozenset({"V1"}))
        with pytest.raises(MergeError, match="must batch consecutive"):
            # Skips row 1 which is still white in column V1.
            pa.receive_action_list(make_al("V1", [2]))

    def test_al_before_rel_is_held(self, pa):
        assert pa.receive_action_list(make_al("V1", [1, 2])) == []
        pa.receive_rel(1, frozenset({"V1"}))
        units = pa.receive_rel(2, frozenset({"V1"}))
        assert unit_summary(units) == [((1, 2), ("V1",))]

    def test_empty_rel_rows_are_inert(self, pa):
        assert pa.receive_rel(1, frozenset()) == []
        assert pa.idle()

    def test_empty_content_lists_apply(self, pa):
        pa.receive_rel(1, frozenset({"V1"}))
        units = pa.receive_action_list(empty_al("V1", [1]))
        assert unit_summary(units) == [((1,), ("V1",))]


class TestGrouping:
    def test_batch_pulls_in_earlier_red_rows(self, pa):
        """A row's earlier unapplied lists join the same transaction."""
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        pa.receive_rel(2, frozenset({"V1"}))
        # V1 batches {1,2}; V2 still white on row 1 -> nothing applies.
        assert pa.receive_action_list(make_al("V1", [1, 2])) == []
        # V2's list for row 1 arrives: rows 1 and 2 must go together,
        # because V1's single list covers both.
        units = pa.receive_action_list(make_al("V2", [1]))
        # Row 1's own list comes first; the batched V1 list is keyed to its
        # last update (row 2), so it follows.
        assert unit_summary(units) == [((1, 2), ("V2", "V1"))]

    def test_failed_group_applies_nothing(self, pa):
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        pa.receive_rel(2, frozenset({"V1", "V3"}))
        pa.receive_action_list(make_al("V1", [1, 2]))
        pa.receive_action_list(make_al("V2", [1]))
        # Row 2 still waits for V3 -> the whole group {1,2} is stuck.
        assert not pa.idle()
        assert pa.vut.color(1, "V2") is Color.RED
        # V3 arrives; now everything goes in one transaction (row 1's list,
        # then row 2's lists in view order).
        units = pa.receive_action_list(make_al("V3", [2]))
        assert unit_summary(units) == [((1, 2), ("V2", "V1", "V3"))]

    def test_independent_rows_do_not_group(self, pa):
        pa.receive_rel(1, frozenset({"V1"}))
        pa.receive_rel(2, frozenset({"V2"}))
        units1 = pa.receive_action_list(make_al("V2", [2]))
        assert unit_summary(units1) == [((2,), ("V2",))]
        units2 = pa.receive_action_list(make_al("V1", [1]))
        assert unit_summary(units2) == [((1,), ("V1",))]

    def test_cascading_unblock_after_group_apply(self, pa):
        pa.receive_rel(1, frozenset({"V1"}))
        pa.receive_rel(2, frozenset({"V1"}))
        pa.receive_rel(3, frozenset({"V1"}))
        pa.receive_action_list(make_al("V1", [1]))
        assert pa.vut.row_ids == (2, 3)
        units = pa.receive_action_list(make_al("V1", [2, 3]))
        assert unit_summary(units) == [((2, 3), ("V1",))]
        assert pa.idle()


class TestPaperExample5:
    """Receipt order REL1..3, AL21, AL23(2,3), AL32, AL11, AL33."""

    def test_full_trace(self):
        pa = PaintingAlgorithm(("V1", "V2", "V3"))
        emitted = {}
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        pa.receive_rel(2, frozenset({"V2", "V3"}))
        pa.receive_rel(3, frozenset({"V2", "V3"}))
        emitted["AL21"] = pa.receive_action_list(make_al("V2", [1]))
        emitted["AL23"] = pa.receive_action_list(make_al("V2", [2, 3]))
        emitted["AL32"] = pa.receive_action_list(make_al("V3", [2]))
        emitted["AL11"] = pa.receive_action_list(make_al("V1", [1]))
        emitted["AL33"] = pa.receive_action_list(make_al("V3", [3]))

        # t1..t3: nothing can be applied.
        assert emitted["AL21"] == [] and emitted["AL23"] == []
        assert emitted["AL32"] == []
        # t4/t5: row 1 applies alone once AL11 arrives.
        assert unit_summary(emitted["AL11"]) == [((1,), ("V1", "V2"))]
        # t6/t7: AL33 triggers rows 2 and 3 together in one transaction.
        assert [u.rows for u in emitted["AL33"]] == [(2, 3)]
        views = tuple(al.view for al in emitted["AL33"][0].action_lists)
        assert views == ("V3", "V2", "V3")  # row2's lists, then row3's
        assert pa.idle()

    def test_states_after_al23(self):
        pa = PaintingAlgorithm(("V1", "V2", "V3"))
        pa.receive_rel(1, frozenset({"V1", "V2"}))
        pa.receive_rel(2, frozenset({"V2", "V3"}))
        pa.receive_rel(3, frozenset({"V2", "V3"}))
        pa.receive_action_list(make_al("V2", [1]))
        pa.receive_action_list(make_al("V2", [2, 3]))
        # Paper t1,t2 table: entry (1,V2) is (r,1); (2,V2) and (3,V2) are (r,3).
        assert pa.vut.state(1, "V2") == 1
        assert pa.vut.state(2, "V2") == 3
        assert pa.vut.state(3, "V2") == 3


class TestOrderSafety:
    def test_group_never_applies_past_a_blocked_member(self):
        """The apply happens only after ALL columns of ALL members check out.

        Construction: row 1 (V2+V3) is blocked on V3; V1 batches rows
        {2,3}; row 3's V2 list is already in.  If an inner recursion frame
        applied {2,3} before the root examined row 3's V2 column, row 3's
        V2 list would commit before row 1's — breaking per-manager order.
        PA must apply nothing until V3's list arrives.
        """
        pa = PaintingAlgorithm(("V1", "V2", "V3"))
        pa.receive_rel(1, frozenset({"V2", "V3"}))
        pa.receive_rel(2, frozenset({"V1"}))
        pa.receive_rel(3, frozenset({"V1", "V2"}))
        assert pa.receive_action_list(make_al("V2", [1])) == []
        assert pa.receive_action_list(make_al("V2", [3])) == []
        # The critical moment: rows 2+3 look ready through column V1 alone.
        assert pa.receive_action_list(make_al("V1", [2, 3])) == []
        # Unblocking row 1 releases it, then cascades into rows {2,3}.
        units = pa.receive_action_list(make_al("V3", [1]))
        assert [u.rows for u in units] == [(1,), (2, 3)]
        assert pa.idle()
