"""Tests for the §4.3 submission policies."""

import pytest

from repro.errors import MergeError
from repro.merge.submission import (
    BatchingPolicy,
    DbmsDependencyPolicy,
    DependencySequencedPolicy,
    EagerPolicy,
    SequentialPolicy,
)
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList
from repro.warehouse.txn import WarehouseTransaction


def make_txn(txn_id: int, views: tuple[str, ...], row: int) -> WarehouseTransaction:
    lists = tuple(
        ActionList.from_delta(v, v, (row,), Delta.insert(Row(x=txn_id)))
        for v in views
    )
    return WarehouseTransaction(txn_id, "merge", lists, (row,))


class Harness:
    """Captures submissions; drives commits manually."""

    def __init__(self, policy):
        self.policy = policy
        self.sent = []
        self._ids = iter(range(100, 200))
        policy.bind(self.sent.append, lambda: next(self._ids))

    def commit(self, txn_id):
        self.policy.on_commit(txn_id)

    @property
    def sent_ids(self):
        return [m.txn.txn_id for m in self.sent]


class TestEager:
    def test_submits_immediately(self):
        h = Harness(EagerPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V1",), 2))
        assert h.sent_ids == [1, 2]
        assert h.sent[0].sequenced_after == ()

    def test_unbound_policy_raises(self):
        with pytest.raises(MergeError, match="never bound"):
            EagerPolicy().offer(make_txn(1, ("V1",), 1))


class TestSequential:
    def test_one_outstanding_at_a_time(self):
        h = Harness(SequentialPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V2",), 2))
        assert h.sent_ids == [1]
        assert h.policy.pending == 1
        h.commit(1)
        assert h.sent_ids == [1, 2]

    def test_commit_of_unknown_txn_is_ignored(self):
        h = Harness(SequentialPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.commit(999)
        assert h.sent_ids == [1]


class TestDependencySequenced:
    def test_independent_txns_overlap(self):
        h = Harness(DependencySequencedPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V2",), 2))
        assert h.sent_ids == [1, 2]

    def test_dependent_txn_waits(self):
        h = Harness(DependencySequencedPolicy())
        h.policy.offer(make_txn(1, ("V1", "V2"), 1))
        h.policy.offer(make_txn(2, ("V2",), 2))
        assert h.sent_ids == [1]
        h.commit(1)
        assert h.sent_ids == [1, 2]

    def test_queued_dependents_keep_order(self):
        h = Harness(DependencySequencedPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V1",), 2))
        h.policy.offer(make_txn(3, ("V1",), 3))
        assert h.sent_ids == [1]
        h.commit(1)
        assert h.sent_ids == [1, 2]
        h.commit(2)
        assert h.sent_ids == [1, 2, 3]

    def test_independent_jumps_past_blocked(self):
        h = Harness(DependencySequencedPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V1",), 2))  # blocked on 1
        h.policy.offer(make_txn(3, ("V3",), 3))  # independent
        assert h.sent_ids == [1, 3]


class TestDbmsDependency:
    def test_annotates_dependencies(self):
        h = Harness(DbmsDependencyPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V1", "V2"), 2))
        h.policy.offer(make_txn(3, ("V2",), 3))
        assert h.sent_ids == [1, 2, 3]
        assert h.sent[0].sequenced_after == ()
        assert h.sent[1].sequenced_after == (1,)
        assert h.sent[2].sequenced_after == (2,)

    def test_committed_deps_not_listed(self):
        h = Harness(DbmsDependencyPolicy())
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.commit(1)
        h.policy.offer(make_txn(2, ("V1",), 2))
        assert h.sent[1].sequenced_after == ()


class TestBatching:
    def test_batches_of_configured_size(self):
        h = Harness(BatchingPolicy(batch_size=2))
        h.policy.offer(make_txn(1, ("V1",), 1))
        assert h.sent == []
        h.policy.offer(make_txn(2, ("V2",), 2))
        assert len(h.sent) == 1
        bwt = h.sent[0].txn
        assert bwt.covered_rows == (1, 2)
        assert bwt.is_batch
        assert bwt.txn_id == 100  # freshly allocated id

    def test_flush_releases_partial_batch(self):
        h = Harness(BatchingPolicy(batch_size=10))
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.flush()
        assert len(h.sent) == 1
        assert h.policy.pending == 0

    def test_inner_policy_sequences_batches(self):
        h = Harness(BatchingPolicy(batch_size=1))
        h.policy.offer(make_txn(1, ("V1",), 1))
        h.policy.offer(make_txn(2, ("V1",), 2))
        assert len(h.sent) == 1  # second batch waits for first commit
        h.commit(h.sent[0].txn.txn_id)
        assert len(h.sent) == 2

    def test_does_not_preserve_completeness(self):
        assert not BatchingPolicy().preserves_completeness
        assert SequentialPolicy().preserves_completeness

    def test_bad_batch_size(self):
        with pytest.raises(MergeError):
            BatchingPolicy(batch_size=0)
