"""Property tests for §6.1 partitioning, coalescing, and shard routing.

The partition is the load-bearing safety argument of distributed merge:
views in different groups must share no base relations (else the groups'
warehouse transactions could interact and break MVC).  These properties
pin it against a from-scratch BFS oracle, assert that coalescing and
hash routing only ever *union* whole components, and that the builder's
``view_to_merge`` map round-trips the router's placement.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.merge.distributed import partition_views, view_to_group_map
from repro.merge.sharding import shard_view_groups
from repro.relational.expressions import (
    BaseRelation,
    Join,
    ViewDefinition,
)


@st.composite
def view_sets(draw):
    """Up to 12 views, each reading 1-3 of a small relation pool (small
    pool => plenty of accidental sharing for the component oracle)."""
    n_views = draw(st.integers(min_value=1, max_value=12))
    pool = [f"rel{i}" for i in range(draw(st.integers(2, 6)))]
    defs = []
    for i in range(n_views):
        rels = draw(
            st.lists(
                st.sampled_from(pool), min_size=1, max_size=3, unique=True
            )
        )
        expr = BaseRelation(rels[0])
        for rel in rels[1:]:
            expr = Join(expr, BaseRelation(rel))
        defs.append(ViewDefinition(f"V{i:02d}", expr))
    return defs


def bfs_components(defs):
    """Oracle: connected components of the view/relation sharing graph,
    computed by plain BFS with no union-find."""
    by_rel: dict[str, list[str]] = {}
    rels = {d.name: set(d.base_relations()) for d in defs}
    for name, relations in rels.items():
        for rel in relations:
            by_rel.setdefault(rel, []).append(name)
    seen: set[str] = set()
    components = []
    for d in defs:
        if d.name in seen:
            continue
        frontier, component = [d.name], set()
        while frontier:
            view = frontier.pop()
            if view in component:
                continue
            component.add(view)
            for rel in rels[view]:
                frontier.extend(
                    v for v in by_rel[rel] if v not in component
                )
        seen |= component
        components.append(tuple(sorted(component)))
    return sorted(components, key=lambda c: c[0])


@given(view_sets())
@settings(max_examples=60, deadline=None)
def test_partition_is_exactly_the_connected_components(defs):
    assert partition_views(defs) == bfs_components(defs)


@given(view_sets(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_coalescing_preserves_coverage_and_disjointness(defs, max_groups):
    groups = partition_views(defs, max_groups=max_groups)
    names = [v for g in groups for v in g]
    # full coverage, no view duplicated, bound respected
    assert sorted(names) == sorted(d.name for d in defs)
    assert len(set(names)) == len(names)
    assert len(groups) <= max(max_groups, 1)
    # coalescing only unions components — never splits one
    by_view = view_to_group_map(groups)
    for component in partition_views(defs):
        assert len({by_view[v] for v in component}) == 1


@given(view_sets(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_shard_routing_preserves_coverage_and_components(defs, shards):
    groups = shard_view_groups(defs, shards=shards)
    names = [v for g in groups for v in g]
    assert sorted(names) == sorted(d.name for d in defs)
    assert len(set(names)) == len(names)
    assert len(groups) <= shards
    by_view = view_to_group_map(groups)
    for component in partition_views(defs):
        assert len({by_view[v] for v in component}) == 1


@given(st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_routing_round_trips_through_builder(merge_groups):
    """views sharing a router group share a merge process in the built
    system, and cross-group views never do."""
    from repro.system.builder import WarehouseSystem
    from repro.system.config import SystemConfig
    from repro.workloads.schemas import paper_views_example3, paper_world

    system = WarehouseSystem(
        paper_world(),
        paper_views_example3(),
        SystemConfig(merge_groups=merge_groups, merge_router="hash"),
    )
    by_view = view_to_group_map(
        shard_view_groups(system.definitions, shards=merge_groups)
    )
    for first in by_view:
        for second in by_view:
            assert (
                system.view_to_merge[first] == system.view_to_merge[second]
            ) == (by_view[first] == by_view[second])
