"""Property tests for ViewUpdateTable invariants.

Driven through random legal operation sequences, the table must maintain:

* colors only move white -> red -> gray (black never changes);
* a row is purgeable iff no white/red entries remain;
* ``next_red`` always returns the minimal red row strictly below;
* ``white_rows_through`` is exactly the white subset at or below a row.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.merge.vut import Color, ViewUpdateTable

VIEWS = ("V1", "V2", "V3")


@st.composite
def operation_sequences(draw):
    """Rows with relevance patterns plus a legal color schedule."""
    n = draw(st.integers(min_value=1, max_value=6))
    rows = []
    for i in range(n):
        relevant = frozenset(v for v in VIEWS if draw(st.booleans()))
        rows.append((i + 1, relevant))
    # For each white entry decide how far it advances: 0=white, 1=red, 2=gray.
    advance = {
        (row, view): draw(st.integers(min_value=0, max_value=2))
        for row, relevant in rows
        for view in relevant
    }
    return rows, advance


@given(scenario=operation_sequences())
@settings(max_examples=150, deadline=None)
def test_color_lifecycle_and_queries(scenario):
    rows, advance = scenario
    vut = ViewUpdateTable(VIEWS)
    for row, relevant in rows:
        vut.allocate_row(row, relevant)
    for (row, view), steps in advance.items():
        if steps >= 1:
            assert vut.color(row, view) is Color.WHITE
            vut.set_color(row, view, Color.RED)
        if steps >= 2:
            vut.set_color(row, view, Color.GRAY)

    for row, relevant in rows:
        # Black entries never change.
        for view in VIEWS:
            if view not in relevant:
                assert vut.color(row, view) is Color.BLACK
        # Purgeability is exactly "no whites or reds".
        active = any(
            vut.color(row, view) in (Color.WHITE, Color.RED)
            for view in relevant
        )
        assert vut.purgeable(row) == (not active)

    # next_red: minimal red strictly below.
    for row, _relevant in rows:
        for view in VIEWS:
            reds_below = [
                r
                for r, rel in rows
                if r > row and view in rel and vut.color(r, view) is Color.RED
            ]
            expected = min(reds_below) if reds_below else 0
            assert vut.next_red(row, view) == expected

    # white_rows_through: exact white subsets.
    last_row = rows[-1][0]
    for view in VIEWS:
        whites = tuple(
            r
            for r, rel in rows
            if view in rel and vut.color(r, view) is Color.WHITE
        )
        assert vut.white_rows_through(last_row, view) == whites

    # purge_completed removes exactly the purgeable rows.
    purgeable = {r for r, _ in rows if vut.purgeable(r)}
    purged = set(vut.purge_completed())
    assert purged == purgeable
    assert set(vut.row_ids) == {r for r, _ in rows} - purgeable
