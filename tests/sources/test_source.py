"""Tests for source processes and the global coordinator."""

import pytest

from repro.errors import SourceError
from repro.messages import UpdateNotification
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.multisource import GlobalTransactionCoordinator
from repro.sources.source import Source
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld


class FakeIntegrator(Process):
    def __init__(self, sim):
        super().__init__(sim, "integrator")
        self.notifications = []

    def handle(self, message, sender):
        self.notifications.append((self.sim.now, message, sender.name))


@pytest.fixture
def setup():
    sim = Simulator()
    world = SourceWorld()
    world.create_relation("R", Schema(["a"]), "alpha")
    world.create_relation("S", Schema(["b"]), "beta")
    integrator = FakeIntegrator(sim)
    alpha = Source(sim, "alpha", world)
    alpha.connect(integrator, 1.0)
    return sim, world, integrator, alpha


class TestSource:
    def test_execute_commits_and_reports(self, setup):
        sim, world, integrator, alpha = setup
        sim.schedule(2.0, alpha.execute_update, Update.insert("R", {"a": 1}))
        sim.run()
        assert len(world.current.relation("R")) == 1
        assert len(integrator.notifications) == 1
        time, message, sender = integrator.notifications[0]
        assert isinstance(message, UpdateNotification)
        assert time == 3.0  # commit at 2.0 + channel latency 1.0
        assert message.commit_time == 2.0

    def test_rejects_foreign_origin(self, setup):
        _sim, _world, _integrator, alpha = setup
        txn = SourceTransaction.single("beta", Update.insert("S", {"b": 1}))
        with pytest.raises(SourceError, match="beta"):
            alpha.execute(txn)

    def test_rejects_foreign_relation(self, setup):
        _sim, _world, _integrator, alpha = setup
        txn = SourceTransaction.single("alpha", Update.insert("S", {"b": 1}))
        with pytest.raises(SourceError, match="does not own"):
            alpha.execute(txn)

    def test_reports_in_commit_order(self, setup):
        sim, _world, integrator, alpha = setup
        for i in range(5):
            sim.schedule(float(i + 1), alpha.execute_update, Update.insert("R", {"a": i}))
        sim.run()
        rows = [
            m.transaction.updates[0].row["a"]
            for _t, m, _s in integrator.notifications
        ]
        assert rows == [0, 1, 2, 3, 4]

    def test_sources_do_not_receive_messages(self, setup):
        sim, _world, _integrator, alpha = setup
        other = FakeIntegrator(sim)
        other.connect(alpha, 0.0)
        sim.schedule(0.0, other.send, "alpha", "bogus")
        with pytest.raises(SourceError):
            sim.run()


class TestCoordinator:
    def test_multi_source_transaction(self, setup):
        sim, world, integrator, _alpha = setup
        coordinator = GlobalTransactionCoordinator(sim, world)
        coordinator.connect(integrator, 1.0)
        sim.schedule(
            1.0,
            coordinator.execute,
            (Update.insert("R", {"a": 1}), Update.insert("S", {"b": 2})),
        )
        sim.run()
        assert len(world.current.relation("R")) == 1
        assert len(world.current.relation("S")) == 1
        assert len(integrator.notifications) == 1
        message = integrator.notifications[0][1]
        assert message.transaction.relations == frozenset({"R", "S"})
