"""Tests for legacy-source monitoring (snapshot-diff wrappers)."""

import pytest

from repro.errors import SourceError
from repro.messages import UpdateNotification
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.monitor import SilentSource, SnapshotDiffMonitor
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_views_example1, paper_world


class Sink(Process):
    def __init__(self, sim):
        super().__init__(sim, "integrator")
        self.reports = []

    def handle(self, message, sender):
        assert isinstance(message, UpdateNotification)
        self.reports.append((self.sim.now, message.transaction))


@pytest.fixture
def rig():
    sim = Simulator()
    world = SourceWorld()
    world.create_relation("L", Schema(["a"]), "legacy", [Row(a=1)])
    source = SilentSource(sim, "legacy", world)
    sink = Sink(sim)
    monitor = SnapshotDiffMonitor(sim, source, period=10.0, stop_after=100.0)
    monitor.connect(sink, 1.0)
    return sim, world, source, monitor, sink


class TestSilentSource:
    def test_commits_without_reporting(self, rig):
        sim, world, source, _monitor, sink = rig
        sim.schedule(1.0, source.execute_update, Update.insert("L", {"a": 2}))
        sim.run(until=5.0)
        assert world.version == 1
        assert sink.reports == []

    def test_ownership_checks(self, rig):
        _sim, _world, source, _monitor, _sink = rig
        with pytest.raises(SourceError):
            source.execute(
                SourceTransaction.single("other", Update.insert("L", {"a": 9}))
            )


class TestMonitor:
    def test_diff_reported_once_per_poll(self, rig):
        sim, _world, source, monitor, sink = rig
        sim.schedule(1.0, source.execute_update, Update.insert("L", {"a": 2}))
        sim.schedule(2.0, source.execute_update, Update.insert("L", {"a": 3}))
        sim.run()
        # Both changes fall in the first poll interval -> one batch.
        assert len(sink.reports) == 1
        _time, txn = sink.reports[0]
        assert len(txn.updates) == 2
        assert txn.origin == "legacy"

    def test_changes_across_intervals_reported_separately(self, rig):
        sim, _world, source, monitor, sink = rig
        sim.schedule(1.0, source.execute_update, Update.insert("L", {"a": 2}))
        sim.schedule(15.0, source.execute_update, Update.insert("L", {"a": 3}))
        sim.run()
        assert len(sink.reports) == 2

    def test_cancelling_changes_invisible(self, rig):
        """Insert+delete within one interval is never observed."""
        sim, _world, source, monitor, sink = rig
        sim.schedule(1.0, source.execute_update, Update.insert("L", {"a": 9}))
        sim.schedule(2.0, source.execute_update, Update.delete("L", {"a": 9}))
        sim.run()
        assert sink.reports == []

    def test_quiet_polls_report_nothing(self, rig):
        sim, _world, _source, monitor, sink = rig
        sim.run()
        assert monitor.polls == 10  # until stop_after
        assert sink.reports == []

    def test_modify_observed_as_delete_plus_insert(self, rig):
        sim, _world, source, _monitor, sink = rig
        sim.schedule(
            1.0, source.execute_update,
            Update.modify("L", {"a": 1}, {"a": 7}),
        )
        sim.run()
        kinds = sorted(u.kind.value for u in sink.reports[0][1].updates)
        assert kinds == ["delete", "insert"]

    def test_bad_period(self, rig):
        sim, _world, source, _monitor, _sink = rig
        with pytest.raises(SourceError):
            SnapshotDiffMonitor(sim, source, period=0.0)


class TestMonitoredWarehouse:
    def test_monitored_legacy_source_feeds_a_consistent_warehouse(self):
        """End to end: a silent source behind a monitor still yields an
        MVC-complete warehouse w.r.t. the observed (batched) schedule."""
        world = paper_world()
        system = WarehouseSystem(
            world, paper_views_example1(),
            SystemConfig(manager_kind="complete"),
        )
        # Replace S's reporting path: drive S through a silent source and
        # let a monitor observe it.  The silent source shares the real
        # owner's identity (process names are labels; nothing routes to
        # sources), so ownership checks and diffs see S.
        owner = world.owner_of("S")
        silent = SilentSource(system.sim, owner, world)
        monitor = SnapshotDiffMonitor(
            system.sim, silent, period=5.0, stop_after=40.0
        )
        monitor.connect(system.integrator, 1.0)

        system.sim.schedule(
            1.0, silent.execute_update, Update.insert("S", Row(B=2, C=3))
        )
        system.sim.schedule(
            12.0, silent.execute_update, Update.insert("S", Row(B=2, C=4))
        )
        system.run()
        assert monitor.reports == 2
        report = system.check_mvc("complete")
        assert report, report.reason
        assert len(system.store.view("V1")) == 2
