"""Tests for source transactions."""

import pytest

from repro.errors import SourceError
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.sources.transactions import CommittedTransaction, SourceTransaction
from repro.sources.update import Update


class TestSourceTransaction:
    def test_single(self):
        txn = SourceTransaction.single("src", Update.insert("R", {"a": 1}))
        assert txn.origin == "src"
        assert len(txn.updates) == 1

    def test_empty_rejected(self):
        with pytest.raises(SourceError):
            SourceTransaction("src", ())

    def test_relations(self):
        txn = SourceTransaction(
            "src",
            (Update.insert("R", {"a": 1}), Update.insert("S", {"b": 2})),
        )
        assert txn.relations == frozenset({"R", "S"})

    def test_deltas_merge_per_relation(self):
        txn = SourceTransaction(
            "src",
            (
                Update.insert("R", {"a": 1}),
                Update.insert("R", {"a": 2}),
                Update.delete("S", {"b": 3}),
            ),
        )
        deltas = txn.deltas()
        assert deltas["R"] == Delta({Row(a=1): 1, Row(a=2): 1})
        assert deltas["S"] == Delta.delete(Row(b=3))

    def test_deltas_cancel_within_transaction(self):
        txn = SourceTransaction(
            "src",
            (Update.insert("R", {"a": 1}), Update.delete("R", {"a": 1})),
        )
        assert txn.deltas()["R"].is_empty()


class TestCommittedTransaction:
    def test_fields(self):
        txn = SourceTransaction.single("src", Update.insert("R", {"a": 1}))
        committed = CommittedTransaction(3, 1.5, txn)
        assert committed.sequence == 3
        assert committed.relations == frozenset({"R"})
        assert "T3" in str(committed)
