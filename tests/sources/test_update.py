"""Tests for updates and their delta semantics."""

import pytest

from repro.errors import SourceError
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.sources.update import Update, UpdateKind


class TestConstruction:
    def test_insert(self):
        update = Update.insert("R", {"a": 1})
        assert update.kind is UpdateKind.INSERT
        assert update.row == Row(a=1)

    def test_delete(self):
        assert Update.delete("R", Row(a=1)).kind is UpdateKind.DELETE

    def test_modify(self):
        update = Update.modify("R", {"a": 1}, {"a": 2})
        assert update.kind is UpdateKind.MODIFY
        assert update.new_row == Row(a=2)

    def test_modify_requires_new_row(self):
        with pytest.raises(SourceError):
            Update("R", UpdateKind.MODIFY, Row(a=1))

    def test_insert_forbids_new_row(self):
        with pytest.raises(SourceError):
            Update("R", UpdateKind.INSERT, Row(a=1), Row(a=2))


class TestSemantics:
    def test_insert_delta(self):
        assert Update.insert("R", {"a": 1}).as_delta() == Delta.insert(Row(a=1))

    def test_delete_delta(self):
        assert Update.delete("R", {"a": 1}).as_delta() == Delta.delete(Row(a=1))

    def test_modify_delta(self):
        delta = Update.modify("R", {"a": 1}, {"a": 2}).as_delta()
        assert delta == Delta({Row(a=1): -1, Row(a=2): 1})

    def test_touched_rows(self):
        assert Update.insert("R", {"a": 1}).touched_rows() == (Row(a=1),)
        assert Update.modify("R", {"a": 1}, {"a": 2}).touched_rows() == (
            Row(a=1),
            Row(a=2),
        )

    def test_str(self):
        assert "insert R" in str(Update.insert("R", {"a": 1}))
        assert "->" in str(Update.modify("R", {"a": 1}, {"a": 2}))
