"""Tests for the shared source world."""

import pytest

from repro.errors import SourceError
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld


@pytest.fixture
def world() -> SourceWorld:
    w = SourceWorld()
    w.create_relation("R", Schema(["a"]), "alpha", [Row(a=1)])
    w.create_relation("S", Schema(["b"]), "beta")
    return w


class TestOwnership:
    def test_owner_of(self, world):
        assert world.owner_of("R") == "alpha"

    def test_owner_of_unknown(self, world):
        with pytest.raises(SourceError):
            world.owner_of("Z")

    def test_relations_of(self, world):
        assert world.relations_of("alpha") == frozenset({"R"})
        assert world.relations_of("nobody") == frozenset()


class TestCommits:
    def test_commit_applies_and_logs(self, world):
        txn = SourceTransaction.single("alpha", Update.insert("R", {"a": 2}))
        committed = world.commit(txn, 1.0)
        assert committed.sequence == 1
        assert len(world.current.relation("R")) == 2
        assert world.log == (committed,)

    def test_commit_unknown_relation(self, world):
        txn = SourceTransaction.single("alpha", Update.insert("Z", {"a": 2}))
        with pytest.raises(SourceError):
            world.commit(txn, 1.0)

    def test_commit_times_must_be_monotone(self, world):
        world.commit(
            SourceTransaction.single("alpha", Update.insert("R", {"a": 2})), 5.0
        )
        with pytest.raises(SourceError):
            world.commit(
                SourceTransaction.single("alpha", Update.insert("R", {"a": 3})), 1.0
            )

    def test_state_sequence(self, world):
        world.commit(
            SourceTransaction.single("alpha", Update.insert("R", {"a": 2})), 1.0
        )
        world.commit(
            SourceTransaction.single("beta", Update.insert("S", {"b": 1})), 2.0
        )
        states = world.state_sequence()
        assert len(states) == 3
        assert len(states[0].relation("R")) == 1
        assert len(states[1].relation("R")) == 2
        assert len(states[2].relation("S")) == 1

    def test_state_after(self, world):
        world.commit(
            SourceTransaction.single("alpha", Update.insert("R", {"a": 2})), 1.0
        )
        assert len(world.state_after(0).relation("R")) == 1
        assert len(world.state_after(1).relation("R")) == 2

    def test_prune_history(self, world):
        for i in range(3):
            world.commit(
                SourceTransaction.single("alpha", Update.insert("R", {"a": 10 + i})),
                float(i + 1),
            )
        world.prune_history_below(2)
        with pytest.raises(SourceError):
            world.state_after(0)
        assert len(world.state_after(2).relation("R")) == 3
