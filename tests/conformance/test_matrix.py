"""The guarantee matrix: positive rows hold, negative rows are caught."""

import json

import pytest

from repro.conformance.matrix import (
    GUARANTEE_MATRIX,
    MatrixRow,
    run_matrix,
    run_row,
)
from repro.conformance.scenario import ScenarioSpec


def row(name):
    matches = [r for r in GUARANTEE_MATRIX if r.name == name]
    assert matches, f"no matrix row named {name}"
    return matches[0]


class TestRowDefinitions:
    def test_matrix_covers_both_expectations(self):
        expects = {r.expect for r in GUARANTEE_MATRIX}
        assert expects == {"holds", "violates"}

    def test_row_names_unique(self):
        names = [r.row_name if hasattr(r, "row_name") else r.name
                 for r in GUARANTEE_MATRIX]
        assert len(names) == len(set(names))

    def test_violates_rows_need_a_level(self):
        with pytest.raises(ValueError, match="check_level"):
            MatrixRow("bad", ScenarioSpec(), "violates")

    def test_expect_validated(self):
        with pytest.raises(ValueError, match="holds"):
            MatrixRow("bad", ScenarioSpec(), "maybe")


class TestPositiveRows:
    @pytest.mark.parametrize(
        "name",
        [
            "spa-complete-fleet",
            "pa-strong-fleet",
            "mixed-complete-strong",
            "mixed-weakest-convergent",
        ],
    )
    def test_holds(self, name):
        result = run_row(row(name), seeds=4)
        assert result.ok, result.reason
        assert result.findings == []


class TestNegativeRows:
    def test_naive_row_caught_and_replayable(self, tmp_path):
        result = run_row(row("naive-fleet-breaks-strong"), seeds=10,
                         out_dir=tmp_path)
        assert result.ok, result.reason
        assert result.reproducer_path is not None
        data = json.loads(result.reproducer_path.read_text())
        assert data["format"] == "mvc-conformance-repro/1"
        assert data["violation"]["level"] == "strong"

    def test_periodic_row_caught(self):
        result = run_row(row("periodic-fleet-breaks-complete"), seeds=10)
        assert result.ok, result.reason


class TestFailingRows:
    def test_holds_row_that_breaks_reports_failure(self):
        broken = MatrixRow(
            "naive-mislabelled-as-safe",
            row("naive-fleet-breaks-strong").spec,
            "holds",
            check_level="strong",
        )
        result = run_row(broken, seeds=10)
        assert not result.ok
        assert "guarantee broken at seed" in result.reason
        assert result.findings

    def test_violates_row_that_holds_reports_failure(self):
        solid = MatrixRow(
            "spa-mislabelled-as-broken",
            row("spa-complete-fleet").spec,
            "violates",
            check_level="complete",
        )
        result = run_row(solid, seeds=3)
        assert not result.ok
        assert "negative oracle failed" in result.reason
        assert result.findings == []
        assert result.reproducer_path is None


class TestFullMatrix:
    def test_all_rows_conform_on_a_small_budget(self, tmp_path):
        results = run_matrix(seeds=6, out_dir=tmp_path)
        failures = [r for r in results if not r.ok]
        assert failures == [], [f"{r.row.name}: {r.reason}" for r in failures]
        written = sorted(p.name for p in tmp_path.iterdir())
        assert written == [
            "cached-restart-stale-artifact-breaks.json",
            "naive-fleet-breaks-strong.json",
            "periodic-fleet-breaks-complete.json",
        ]
