"""Determinism regression: the default schedule is frozen.

The golden digests below were captured from the pristine tree *before*
the scheduler hook landed in the kernel.  The default configuration
(``scheduler=None``) must reproduce them bit-for-bit forever: any change
to event ordering, tie-breaking, or trace content shows up here first.
If a digest moves, that is a determinism regression (or a deliberate
trace-format change — recapture only with justification in the commit).
"""

import pytest

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world

GOLDEN = {
    ("complete", "dependency-sequenced", 13):
        "8a6684c90b20021e38521f61b602c8feb0641bc50944e4444498a53441eb46b1",
    ("strong", "batching", 7):
        "6a1f816184edb48ad2e4befaeb6063e6f12ad77682220a4c52898990db8c45f3",
    ("convergent", "sequential", 3):
        "fd77b9098ee3738639774e795fa1c20716e4dc26edf5b037734f8bc1727682f2",
}


def run_digest(manager, policy, seed):
    world = paper_world()
    config = SystemConfig(
        manager_kind=manager, submission_policy=policy, seed=seed
    )
    system = WarehouseSystem(world, paper_views_example2(), config)
    spec = WorkloadSpec(
        updates=30,
        rate=2.0,
        seed=seed,
        mix=(0.6, 0.2, 0.2),
        arrivals="poisson",
        multi_update_fraction=0.2,
    )
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()
    return system.sim.trace.digest()


class TestGoldenDigests:
    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_default_schedule_unchanged(self, key):
        manager, policy, seed = key
        assert run_digest(manager, policy, seed) == GOLDEN[key]

    def test_digest_is_stable_across_reruns(self):
        key = ("complete", "dependency-sequenced", 13)
        assert run_digest(*key) == run_digest(*key)
