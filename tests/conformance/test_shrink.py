"""ddmin: correctness, minimality, and budget behaviour."""

from repro.conformance.shrink import ddmin


class TestDdmin:
    def test_single_culprit(self):
        minimal, _runs = ddmin(list(range(20)), lambda s: 13 in s)
        assert minimal == [13]

    def test_pair_of_culprits(self):
        minimal, _runs = ddmin(list(range(16)), lambda s: 3 in s and 12 in s)
        assert sorted(minimal) == [3, 12]

    def test_empty_failure_shortcut(self):
        calls = []

        def always(subset):
            calls.append(list(subset))
            return True

        minimal, runs = ddmin(list(range(50)), always)
        assert minimal == []
        assert runs == 1  # tested [] first, done

    def test_empty_input(self):
        minimal, runs = ddmin([], lambda s: True)
        assert minimal == []

    def test_whole_list_needed(self):
        items = [1, 2, 3, 4]
        minimal, _runs = ddmin(items, lambda s: len(s) == 4)
        assert minimal == items

    def test_result_is_one_minimal(self):
        """Removing any single element of the result breaks the predicate."""
        predicate = lambda s: {2, 7, 11} <= set(s)  # noqa: E731
        minimal, _runs = ddmin(list(range(14)), predicate)
        assert predicate(minimal)
        for i in range(len(minimal)):
            assert not predicate(minimal[:i] + minimal[i + 1 :])

    def test_budget_respected(self):
        counter = {"n": 0}

        def costly(subset):
            counter["n"] += 1
            return {2, 7, 11, 13} <= set(subset)

        _minimal, runs = ddmin(list(range(200)), costly, max_runs=10)
        assert runs <= 10
        assert counter["n"] == runs

    def test_order_preserved(self):
        minimal, _runs = ddmin([5, 9, 1, 7], lambda s: 9 in s and 7 in s)
        assert minimal == [9, 7]
