"""The ``repro conformance`` CLI: flags, exit codes, artifacts."""

import json

import pytest

from repro.cli import main
from repro.conformance.cli import parse_faults, parse_fleet
from repro.errors import ReproError


class TestParsers:
    def test_parse_fleet(self):
        assert parse_fleet("V1=complete,V2=naive") == {
            "V1": "complete",
            "V2": "naive",
        }

    def test_parse_fleet_rejects_bad_kind(self):
        with pytest.raises(ReproError, match="kind"):
            parse_fleet("V1=quantum")

    def test_parse_faults(self):
        plan = parse_faults("drop=0.1,dup=0.05,seed=3,unreliable")
        assert plan.drop_rate == 0.1
        assert plan.duplicate_rate == 0.05
        assert plan.seed == 3
        assert plan.reliable is False

    def test_parse_faults_rejects_unknown_key(self):
        with pytest.raises(ReproError, match="warp"):
            parse_faults("warp=1")


class TestExplore:
    def test_clean_config_exits_zero(self, capsys):
        code = main([
            "conformance", "explore", "--manager", "complete",
            "--algorithm", "spa", "--updates", "8", "--seeds", "3",
        ])
        assert code == 0
        assert "no violation" in capsys.readouterr().out

    def test_naive_hunt_exits_two_and_writes_reproducer(self, tmp_path, capsys):
        out = tmp_path / "naive.json"
        code = main([
            "conformance", "explore", "--manager", "naive",
            "--level", "strong", "--seeds", "200", "--out", str(out),
        ])
        assert code == 2
        assert "VIOLATION" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["format"] == "mvc-conformance-repro/1"
        assert data["level"] == "strong"

    def test_replay_round_trip(self, tmp_path, capsys):
        out = tmp_path / "repro.json"
        assert main([
            "conformance", "explore", "--manager", "naive",
            "--level", "strong", "--seeds", "200", "--out", str(out),
        ]) == 2
        code = main(["conformance", "replay", str(out)])
        assert code == 0
        assert "byte-for-byte" in capsys.readouterr().out


class TestMatrix:
    def test_matrix_smoke(self, tmp_path, capsys):
        code = main([
            "conformance", "matrix", "--seeds", "6",
            "--out-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "14/14 rows conform" in out
        assert (tmp_path / "naive-fleet-breaks-strong.json").exists()
