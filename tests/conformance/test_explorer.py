"""Explorer end-to-end: hunts, negative oracles, shrinking, replay."""

import pytest

from repro.conformance.explorer import Explorer, Reproducer, replay
from repro.conformance.oracle import (
    Violation,
    check_run,
    effective_view_levels,
    fleet_expected_level,
)
from repro.conformance.scenario import ScenarioSpec
from repro.errors import ReproError
from repro.sim.scheduler import DelayInjectingScheduler


def naive_spec():
    return ScenarioSpec(
        schema="paper",
        updates=12,
        rate=2.0,
        mix=(0.7, 0.15, 0.15),
        scheduler="delay",
        manager_kind="naive",
    )


class TestOracle:
    def test_effective_levels_weakest_of_manager_and_merge(self):
        spec = ScenarioSpec(
            manager_kinds={"V1": "complete", "V2": "strong", "V3": "convergent"},
            scheduler="fifo",
        )
        system = spec.build()
        levels = effective_view_levels(system)
        # merge "auto" picks the weakest algorithm for the whole group, so
        # even the complete manager's view is capped by the merge level.
        assert levels["V3"] == "convergent"
        assert fleet_expected_level(system) == "convergent"

    def test_naive_fleet_promises_nothing(self):
        system = ScenarioSpec(manager_kind="naive", scheduler="fifo").build()
        assert fleet_expected_level(system) is None
        assert set(effective_view_levels(system).values()) == {None}

    def test_conformant_run_has_no_violations(self):
        spec = ScenarioSpec(
            updates=8, manager_kind="complete", merge_algorithm="spa",
            scheduler="fifo",
        )
        system = spec.build()
        system.run()
        assert check_run(system) == []


class TestNegativeOracle:
    """Satellite: the explorer finds a naive-fleet violation within budget."""

    def test_naive_fleet_caught_within_200_seeds(self):
        explorer = Explorer(naive_spec(), seeds=200, level="strong")
        findings = explorer.explore()
        assert findings, "no violation found in 200 seeds"
        finding = findings[0]
        assert finding.violations
        assert all(isinstance(v, Violation) for v in finding.violations)

    def test_crashes_are_findings(self):
        """A run that raises is reported, not propagated."""
        # High-rate naive workloads double-apply deltas and crash the
        # warehouse; hunt until we see one.
        spec = ScenarioSpec(
            schema="paper", updates=20, rate=4.0, scheduler="delay",
            manager_kind="naive",
        )
        explorer = Explorer(spec, seeds=60, level="strong")
        for seed in range(60):
            result = explorer.execute(seed)
            if any(v.level == "execution" for v in result.violations):
                assert result.violations[0].scope == "run"
                return
        pytest.skip("no crashing seed in range (workload drifted)")


class TestShrinkAndReplay:
    def test_shrunk_reproducer_replays_byte_for_byte(self, tmp_path):
        explorer = Explorer(naive_spec(), seeds=200, level="strong")
        finding = explorer.explore()[0]
        reproducer = explorer.shrink(finding)
        # Satellite acceptance: minimal schedules are tiny.
        assert len(reproducer.perturbations) <= 10
        path = reproducer.save(tmp_path / "repro.json")
        loaded = Reproducer.load(path)
        assert loaded.to_dict() == reproducer.to_dict()
        result = replay(loaded)
        assert result.reproduced
        assert result.digest_matches
        assert result.trace_digest == reproducer.trace_sha256

    def test_full_decision_replay_equals_explore_run(self):
        explorer = Explorer(naive_spec(), seeds=200, level="strong")
        finding = explorer.explore()[0]
        again = explorer.execute(
            finding.seed,
            scheduler=DelayInjectingScheduler.replay(finding.perturbations),
        )
        assert again.trace_digest == finding.trace_digest

    def test_reproducer_format_guard(self):
        with pytest.raises(ReproError, match="format"):
            Reproducer.from_dict({"format": "something-else/9"})

    def test_time_budget_caps_the_hunt(self):
        spec = ScenarioSpec(
            updates=8, manager_kind="complete", merge_algorithm="spa",
            scheduler="delay",
        )
        explorer = Explorer(spec, seeds=10_000, time_budget=1.5)
        explorer.explore()
        assert explorer.runs_executed < 10_000


class TestPositiveHunts:
    def test_spa_fleet_survives_a_short_hunt(self):
        spec = ScenarioSpec(
            updates=10, rate=2.0, multi_update_fraction=0.2,
            manager_kind="complete", merge_algorithm="spa", scheduler="delay",
        )
        explorer = Explorer(spec, seeds=5, stop_on_first=False)
        assert explorer.explore() == []

    def test_pa_fleet_survives_a_short_hunt(self):
        spec = ScenarioSpec(
            updates=10, rate=2.0, multi_update_fraction=0.2,
            manager_kind="strong", merge_algorithm="pa", scheduler="delay",
        )
        explorer = Explorer(spec, seeds=5, stop_on_first=False)
        assert explorer.explore() == []
