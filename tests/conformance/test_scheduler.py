"""Scheduler plumbing: FIFO default, perturbation replay, causal safety."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.faults.plan import ChannelFaultModel
from repro.sim.kernel import Simulator
from repro.sim.network import Channel, ReliableChannel
from repro.sim.process import Process
from repro.sim.scheduler import (
    DelayInjectingScheduler,
    FifoScheduler,
    Perturbation,
    RandomScheduler,
    Scheduler,
)
from repro.system.config import SystemConfig
from repro.system.builder import WarehouseSystem
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world


def run_system(scheduler=None, seed=0):
    world = paper_world()
    config = SystemConfig(manager_kind="complete", seed=seed, scheduler=scheduler)
    system = WarehouseSystem(world, paper_views_example2(), config)
    spec = WorkloadSpec(updates=15, rate=2.0, seed=seed, mix=(0.6, 0.2, 0.2))
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()
    return system


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle(self, message, sender):
        self.received.append(message)


class TestDefaultScheduler:
    def test_explicit_default_matches_implicit(self):
        """SystemConfig(scheduler=Scheduler()) is bit-for-bit the legacy run."""
        legacy = run_system(scheduler=None)
        explicit = run_system(scheduler=Scheduler())
        assert legacy.sim.trace.digest() == explicit.sim.trace.digest()

    def test_fifo_alias_is_the_default(self):
        assert FifoScheduler is Scheduler

    def test_adjust_is_identity_with_zero_tiebreak(self):
        assert Scheduler().adjust(3.5, ("a", "b")) == (3.5, 0.0)
        assert Scheduler().adjust(0.0, None) == (0.0, 0.0)


class TestRandomScheduler:
    def test_same_seed_same_run(self):
        one = run_system(scheduler=RandomScheduler(seed=7))
        two = run_system(scheduler=RandomScheduler(seed=7))
        assert one.sim.trace.digest() == two.sim.trace.digest()

    def test_some_seed_changes_the_interleaving(self):
        baseline = run_system(scheduler=None).sim.trace.digest()
        digests = {
            run_system(scheduler=RandomScheduler(seed=s)).sim.trace.digest()
            for s in range(5)
        }
        assert digests != {baseline}

    def test_guarantee_survives_the_shuffle(self):
        for seed in range(3):
            system = run_system(scheduler=RandomScheduler(seed=seed))
            assert system.check_mvc("complete").ok


class TestSchedulerContract:
    def test_moving_an_event_earlier_is_rejected(self):
        class TimeTraveler(Scheduler):
            def adjust(self, time, lane):
                return (time - 1.0, 0.0)

        sim = Simulator(scheduler=TimeTraveler())
        with pytest.raises(SimulationError, match="earlier"):
            sim.schedule(5.0, lambda: None)

    def test_reset_called_on_adoption(self):
        scheduler = DelayInjectingScheduler(seed=1)
        scheduler.decisions.append(Perturbation("delay", ("x", "y"), 0, 1.0))
        Simulator(scheduler=scheduler)
        assert scheduler.decisions == []


class TestPerturbation:
    def test_round_trip(self):
        p = Perturbation("delay", ("a", "b"), 3, 1.25)
        assert Perturbation.from_dict(p.to_dict()) == p

    def test_validation(self):
        with pytest.raises(SimulationError):
            Perturbation("teleport", ("a", "b"), 0, 1.0)
        with pytest.raises(SimulationError):
            Perturbation("delay", ("a", "b"), -1, 1.0)
        with pytest.raises(SimulationError):
            Perturbation("reorder", ("a", "b"), 0, -0.5)

    def test_list_lane_normalized_to_tuple(self):
        p = Perturbation("delay", ["a", "b"], 0, 1.0)
        assert p.lane == ("a", "b")


class TestDelayInjectingScheduler:
    def test_rates_validated(self):
        with pytest.raises(SimulationError):
            DelayInjectingScheduler(delay_rate=1.5)
        with pytest.raises(SimulationError):
            DelayInjectingScheduler(max_delay=-1.0)

    def test_replaying_full_decisions_reproduces_the_run(self):
        explore = run_system(
            scheduler=DelayInjectingScheduler(
                seed=3, delay_rate=0.4, reorder_rate=0.4
            )
        )
        decisions = explore.sim.scheduler.decisions
        assert decisions, "expected some perturbations at these rates"
        replayed = run_system(
            scheduler=DelayInjectingScheduler.replay(decisions)
        )
        assert explore.sim.trace.digest() == replayed.sim.trace.digest()

    def test_replay_applies_nothing_beyond_the_list(self):
        empty = run_system(scheduler=DelayInjectingScheduler.replay([]))
        legacy = run_system(scheduler=None)
        assert empty.sim.trace.digest() == legacy.sim.trace.digest()

    def test_internal_events_untouched(self):
        scheduler = DelayInjectingScheduler(seed=0, delay_rate=1.0, reorder_rate=1.0)
        assert scheduler.adjust(2.0, None) == (2.0, 0.0)
        assert scheduler.decisions == []


class TestCausalOrderSafety:
    """Satellite: no scheduler may reorder same-channel, same-sender events."""

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=2,
            max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_ordered_lane_never_reorders(self, seed, gaps):
        """Adversarial delays/reorders on one FIFO lane preserve send order."""
        sim = Simulator(
            scheduler=DelayInjectingScheduler(
                seed=seed, delay_rate=0.9, max_delay=5.0, reorder_rate=0.9
            )
        )
        order = []
        time = 0.0
        for i, gap in enumerate(gaps):
            time += gap
            sim.schedule_at(time, order.append, i, lane=("src", "dst"))
        sim.run()
        assert order == list(range(len(gaps)))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_channel_fifo_under_adversarial_scheduler(self, seed):
        """A plain Channel delivers in send order under any scheduler."""
        sim = Simulator(
            scheduler=DelayInjectingScheduler(
                seed=seed, delay_rate=0.8, max_delay=4.0, reorder_rate=0.8
            )
        )
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, latency=1.0)
        for i in range(8):
            channel.send(i)
            sim.run(until=sim.now + 0.25)
        sim.run()
        assert b.received == list(range(8))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_reliable_channel_exactly_once_in_order(self, seed):
        """ReliableChannel keeps FIFO-exactly-once under faults *and* an
        adversarial scheduler (the lossy transport legitimately reorders;
        recovery must still converge)."""
        sim = Simulator(
            scheduler=DelayInjectingScheduler(
                seed=seed, delay_rate=0.6, max_delay=3.0, reorder_rate=0.6
            )
        )
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = ReliableChannel(
            sim,
            a,
            b,
            latency=1.0,
            faults=ChannelFaultModel(
                drop_rate=0.2, duplicate_rate=0.2, seed=seed
            ),
        )
        a.attach(channel)
        for i in range(8):
            channel.send(i)
            sim.run(until=sim.now + 0.5)
        sim.run()
        assert b.received == list(range(8))
        assert channel.unacked == 0
