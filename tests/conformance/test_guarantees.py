"""Property suite: random sane fleets never violate their advertised level.

Hypothesis draws a random :class:`ScenarioSpec` — fleet size 1–4 over the
wide paper schema, per-view manager kinds from the non-broken set, both
painting algorithms (via "auto" and explicit choices), faults on or off,
random or delay scheduling — runs it, and asks the oracle whether the
configuration kept its own promise.  Any counterexample Hypothesis finds
is a real conformance bug; the explorer's shrinker then applies on top
(see ``test_explorer.py`` for the ≤10-perturbation bound).
"""

from hypothesis import given, settings, strategies as st

from repro.conformance.explorer import Explorer
from repro.conformance.oracle import check_run, fleet_expected_level
from repro.conformance.scenario import ScenarioSpec
from repro.faults.plan import FaultPlan

SAFE_KINDS = ("complete", "strong", "complete-n", "periodic", "convergent")
VIEW_NAMES = ("V1", "V2", "V3", "V4")


@st.composite
def scenario_specs(draw):
    fleet_size = draw(st.integers(min_value=1, max_value=4))
    kinds = {
        VIEW_NAMES[i]: draw(st.sampled_from(SAFE_KINDS))
        for i in range(fleet_size)
    }
    # Explicit algorithms must be compatible with the fleet: SPA accepts
    # only complete managers (one update per action list), PA accepts
    # anything that sends action lists (not convergent/naive refreshers).
    if all(k == "complete" for k in kinds.values()):
        algorithm = draw(st.sampled_from(("auto", "spa", "pa")))
    elif all(k != "convergent" for k in kinds.values()):
        algorithm = draw(st.sampled_from(("auto", "pa")))
    else:
        algorithm = "auto"
    faults = draw(
        st.sampled_from(
            (
                None,
                FaultPlan(seed=1, drop_rate=0.05, duplicate_rate=0.05,
                          reliable=True),
            )
        )
    )
    return ScenarioSpec(
        schema="paper-wide",
        views=fleet_size,
        updates=draw(st.integers(min_value=6, max_value=10)),
        rate=draw(st.sampled_from((1.0, 2.0, 4.0))),
        multi_update_fraction=draw(st.sampled_from((0.0, 0.25))),
        manager_kinds=kinds,
        merge_algorithm=algorithm,
        submission_policy=draw(
            st.sampled_from(("dependency-sequenced", "sequential", "batching"))
        ),
        refresh_period=15.0,
        fault_plan=faults,
        scheduler=draw(st.sampled_from(("random", "delay"))),
        delay_rate=0.3,
        reorder_rate=0.3,
    )


class TestAdvertisedGuarantees:
    @given(spec=scenario_specs(), run_seed=st.integers(min_value=0, max_value=9))
    @settings(max_examples=15, deadline=None)
    def test_never_violates_advertised_level(self, spec, run_seed):
        system = spec.build(run_seed=run_seed)
        system.run()
        assert fleet_expected_level(system) is not None  # sane fleets promise
        violations = check_run(system)
        assert violations == [], [str(v) for v in violations]

    @given(spec=scenario_specs())
    @settings(max_examples=5, deadline=None)
    def test_explorer_agrees_with_direct_checking(self, spec):
        explorer = Explorer(spec, seeds=2, stop_on_first=False)
        assert explorer.explore() == []
