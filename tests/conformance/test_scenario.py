"""ScenarioSpec: validation, JSON round-trips, deterministic builds."""

import pytest

from repro.conformance.scenario import SCENARIO_SCHEMAS, ScenarioSpec
from repro.errors import ReproError
from repro.faults.plan import CrashSpec, FaultPlan
from repro.sim.scheduler import (
    DelayInjectingScheduler,
    RandomScheduler,
    Scheduler,
)


class TestValidation:
    def test_unknown_schema_rejected(self):
        with pytest.raises(ReproError, match="schema"):
            ScenarioSpec(schema="nope")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ReproError, match="scheduler"):
            ScenarioSpec(scheduler="chaotic")

    def test_negative_views_rejected(self):
        with pytest.raises(ReproError, match="views"):
            ScenarioSpec(views=-1)

    def test_too_many_views_rejected_at_materialize(self):
        with pytest.raises(ReproError, match="cannot take"):
            ScenarioSpec(schema="paper", views=99).materialize()


class TestMaterialize:
    def test_every_schema_materializes(self):
        for name in SCENARIO_SCHEMAS:
            world, views = ScenarioSpec(schema=name).materialize()
            assert views
            assert world.schemas

    def test_views_prefix(self):
        _world, views = ScenarioSpec(schema="paper-wide", views=2).materialize()
        assert [v.name for v in views] == ["V1", "V2"]

    def test_zero_means_all(self):
        _world, views = ScenarioSpec(schema="paper-wide", views=0).materialize()
        assert len(views) == 4


class TestSerialization:
    def test_round_trip_plain(self):
        spec = ScenarioSpec(schema="paper", updates=9, rate=1.5)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_with_faults_and_fleet(self):
        spec = ScenarioSpec(
            schema="paper-wide",
            views=3,
            manager_kinds={"V1": "complete", "V2": "naive"},
            fault_plan=FaultPlan(
                seed=5,
                drop_rate=0.1,
                duplicate_rate=0.02,
                crashes=(CrashSpec(process="merge", at=4.0, restart_after=2.0),),
                reliable=True,
            ),
            scheduler="random",
            vary_workload=False,
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.fault_plan.crashes[0].process == "merge"

    def test_unknown_field_rejected(self):
        data = ScenarioSpec().to_dict()
        data["warp_factor"] = 9
        with pytest.raises(ReproError, match="warp_factor"):
            ScenarioSpec.from_dict(data)


class TestSchedulers:
    def test_kinds(self):
        assert type(ScenarioSpec(scheduler="fifo").make_scheduler(1)) is Scheduler
        assert isinstance(
            ScenarioSpec(scheduler="random").make_scheduler(1), RandomScheduler
        )
        delay = ScenarioSpec(scheduler="delay").make_scheduler(7)
        assert isinstance(delay, DelayInjectingScheduler)
        assert delay.seed == 7


class TestBuild:
    def test_run_seed_varies_the_workload(self):
        spec = ScenarioSpec(updates=6)
        assert spec.workload(0).seed != spec.workload(1).seed

    def test_pinned_workload_ignores_run_seed(self):
        spec = ScenarioSpec(updates=6, vary_workload=False, workload_seed=11)
        assert spec.workload(0).seed == spec.workload(1).seed == 11

    def test_fault_seed_derived_per_run(self):
        spec = ScenarioSpec(fault_plan=FaultPlan(seed=2, drop_rate=0.1))
        plans = {spec.fault_plan_for(s).seed for s in range(4)}
        assert len(plans) == 4
        assert spec.fault_plan_for(3).seed == spec.fault_plan_for(3).seed

    def test_build_runs_to_completion(self):
        spec = ScenarioSpec(updates=6, scheduler="fifo")
        system = spec.build(run_seed=0)
        system.run()
        assert len(system.history) >= 1
        assert system.check_mvc("complete").ok

    def test_same_run_seed_same_run(self):
        spec = ScenarioSpec(updates=8, scheduler="delay")
        one = spec.build(run_seed=5)
        one.run()
        two = spec.build(run_seed=5)
        two.run()
        assert one.sim.trace.digest() == two.sim.trace.digest()
