"""Tests for warehouse transactions and batching."""

import pytest

from repro.errors import WarehouseError
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList
from repro.warehouse.txn import WarehouseTransaction, batch


def al(view, row, empty=False):
    delta = Delta() if empty else Delta.insert(Row(x=row))
    return ActionList.from_delta(view, view, (row,), delta)


def txn(txn_id, views, row, empty=False):
    return WarehouseTransaction(
        txn_id, "merge", tuple(al(v, row, empty) for v in views), (row,)
    )


class TestWarehouseTransaction:
    def test_view_set_includes_empty_lists(self):
        t = WarehouseTransaction(
            1, "merge", (al("V1", 1), al("V2", 1, empty=True)), (1,)
        )
        assert t.view_set == frozenset({"V1", "V2"})
        assert t.effective_views == frozenset({"V1"})

    def test_depends_on(self):
        first = txn(1, ("V1", "V2"), 1)
        second = txn(2, ("V2",), 2)
        third = txn(3, ("V3",), 3)
        assert second.depends_on(first)
        assert not third.depends_on(first)
        assert not first.depends_on(second)  # earlier never depends on later

    def test_covered_rows_validation(self):
        with pytest.raises(WarehouseError):
            WarehouseTransaction(1, "merge", (), ())
        with pytest.raises(WarehouseError):
            WarehouseTransaction(1, "merge", (), (2, 1))

    def test_is_batch(self):
        assert not txn(1, ("V1",), 1).is_batch

    def test_str(self):
        assert "WT1" in str(txn(1, ("V1",), 1))


class TestBatch:
    def test_batch_concatenates_in_order(self):
        combined = batch(9, "merge", [txn(1, ("V1",), 1), txn(2, ("V1",), 2)])
        assert combined.txn_id == 9
        assert combined.covered_rows == (1, 2)
        assert combined.is_batch
        rows = [a.covered[0] for a in combined.action_lists]
        assert rows == [1, 2]  # dependent constituents keep order

    def test_batch_empty_rejected(self):
        with pytest.raises(WarehouseError):
            batch(1, "merge", [])
