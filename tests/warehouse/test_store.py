"""Tests for the view store and warehouse state history."""

import pytest

from repro.errors import WarehouseError
from repro.relational.delta import Delta
from repro.relational.parser import parse_view
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.viewmgr.actions import ActionList
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction

SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
DEFS = [
    parse_view("V1 = SELECT * FROM R JOIN S"),
    parse_view("V2 = SELECT B FROM S"),
]


def delta_txn(txn_id, view, delta, row):
    lists = (ActionList.from_delta(view, view, (row,), delta),)
    return WarehouseTransaction(txn_id, "merge", lists, (row,))


@pytest.fixture
def store() -> ViewStore:
    return ViewStore(DEFS, SCHEMAS)


class TestSetup:
    def test_views_created_with_inferred_schema(self, store):
        assert store.view("V1").schema.names == ("A", "B", "C")
        assert store.view_names == ("V1", "V2")

    def test_duplicate_view_rejected(self):
        with pytest.raises(WarehouseError):
            ViewStore(DEFS + [DEFS[0]], SCHEMAS)

    def test_unknown_view(self, store):
        with pytest.raises(WarehouseError):
            store.view("Zed")
        with pytest.raises(WarehouseError):
            store.definition("Zed")

    def test_initialize_view(self, store):
        contents = Relation(rows=[Row(A=1, B=2, C=3)])
        store.initialize_view("V1", contents)
        assert store.view("V1") == contents
        assert store.history[0].view("V1") == contents

    def test_initialize_after_commit_rejected(self, store):
        store.apply(delta_txn(1, "V2", Delta.insert(Row(B=1)), 1), 1.0)
        with pytest.raises(WarehouseError):
            store.initialize_view("V1", Relation())


class TestApply:
    def test_apply_records_state(self, store):
        state = store.apply(delta_txn(1, "V2", Delta.insert(Row(B=1)), 1), 2.5)
        assert state.index == 1
        assert state.txn_id == 1
        assert state.time == 2.5
        assert state.covered_rows == (1,)
        assert Row(B=1) in store.view("V2")

    def test_history_snapshots_are_immutable_copies(self, store):
        store.apply(delta_txn(1, "V2", Delta.insert(Row(B=1)), 1), 1.0)
        store.apply(delta_txn(2, "V2", Delta.insert(Row(B=2)), 2), 2.0)
        assert len(store.history[1].view("V2")) == 1
        assert len(store.history[2].view("V2")) == 2

    def test_atomic_rollback_on_failure(self, store):
        store.apply(delta_txn(1, "V2", Delta.insert(Row(B=1)), 1), 1.0)
        bad = WarehouseTransaction(
            2,
            "merge",
            (
                ActionList.from_delta("V2", "m", (2,), Delta.insert(Row(B=5))),
                ActionList.from_delta("V1", "m", (2,), Delta.delete(Row(A=9, B=9, C=9))),
            ),
            (2,),
        )
        with pytest.raises(Exception):
            store.apply(bad, 2.0)
        # The successful first list was rolled back with the failing one.
        assert Row(B=5) not in store.view("V2")
        assert len(store.history) == 2  # no new state recorded

    def test_replace_action(self, store):
        replacement = Relation(rows=[Row(B=7), Row(B=8)])
        lists = (ActionList.replacement("V2", "m", (1,), replacement),)
        store.apply(WarehouseTransaction(1, "merge", lists, (1,)), 1.0)
        assert store.view("V2") == replacement

    def test_states_of_view(self, store):
        store.apply(delta_txn(1, "V2", Delta.insert(Row(B=1)), 1), 1.0)
        sequence = store.states_of_view("V2")
        assert len(sequence) == 2
        assert len(sequence[0]) == 0 and len(sequence[1]) == 1


class TestHistoryToggle:
    def test_record_history_off_keeps_first_and_last(self):
        store = ViewStore(DEFS, SCHEMAS, record_history=False)
        for i in range(1, 4):
            store.apply(delta_txn(i, "V2", Delta.insert(Row(B=i)), i), float(i))
        assert len(store.history) == 2
        assert store.history[0].txn_id == -1
        assert store.history[-1].txn_id == 3
        assert store.current_state.txn_id == 3
