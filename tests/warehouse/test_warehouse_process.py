"""Tests for the warehouse process: execution, commit order, dependencies."""

import pytest

from repro.errors import WarehouseError
from repro.messages import CommitNotification, WarehouseTransactionMsg
from repro.relational.delta import Delta
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.viewmgr.actions import ActionList
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction
from repro.warehouse.warehouse import WarehouseProcess

SCHEMAS = {"R": Schema(["A"])}
DEFS = [parse_view("V1 = SELECT * FROM R"), parse_view("V2 = SELECT * FROM R")]


class FakeMerge(Process):
    def __init__(self, sim, name="merge"):
        super().__init__(sim, name)
        self.commits = []

    def handle(self, message, sender):
        assert isinstance(message, CommitNotification)
        self.commits.append(message.txn_id)


def make_txn(txn_id, views, row, rows_count=1):
    delta = Delta({Row(A=100 * txn_id + i): 1 for i in range(rows_count)})
    lists = tuple(
        ActionList.from_delta(v, v, (row,), delta) for v in views
    )
    return WarehouseTransaction(txn_id, "merge", lists, (row,))


@pytest.fixture
def rig():
    sim = Simulator()
    store = ViewStore(DEFS, SCHEMAS)
    warehouse = WarehouseProcess(
        sim, store, per_txn_overhead=1.0, per_action_cost=0.1
    )
    merge = FakeMerge(sim)
    merge.connect(warehouse, 0.0)
    warehouse.connect(merge, 0.0)
    return sim, store, warehouse, merge


class TestExecution:
    def test_commit_applies_and_notifies(self, rig):
        sim, store, warehouse, merge = rig
        sim.schedule(
            0.0, merge.send, "warehouse",
            WarehouseTransactionMsg(make_txn(1, ("V1",), 1)),
        )
        sim.run()
        assert warehouse.commits == 1
        assert merge.commits == [1]
        assert len(store.view("V1")) == 1

    def test_execution_time_scales_with_rows(self, rig):
        _sim, _store, warehouse, _merge = rig
        small = warehouse.execution_time(make_txn(1, ("V1",), 1, rows_count=1))
        large = warehouse.execution_time(make_txn(2, ("V1",), 2, rows_count=50))
        assert large > small

    def test_single_executor_serialises(self, rig):
        sim, _store, warehouse, merge = rig
        for i in (1, 2, 3):
            sim.schedule(
                0.0, merge.send, "warehouse",
                WarehouseTransactionMsg(make_txn(i, ("V1",), i)),
            )
        sim.run()
        assert merge.commits == [1, 2, 3]

    def test_invalid_executors(self):
        sim = Simulator()
        store = ViewStore(DEFS, SCHEMAS)
        with pytest.raises(WarehouseError):
            WarehouseProcess(sim, store, executors=0)

    def test_rejects_unknown_message(self, rig):
        sim, _store, warehouse, merge = rig
        sim.schedule(0.0, merge.send, "warehouse", "junk")
        with pytest.raises(WarehouseError):
            sim.run()


class TestCommitOrderHazard:
    def test_parallel_executors_can_reorder_commits(self):
        """§4.3: a big early transaction finishes after a small later one."""
        sim = Simulator()
        store = ViewStore(DEFS, SCHEMAS)
        warehouse = WarehouseProcess(
            sim, store, executors=2, per_txn_overhead=0.1, per_action_cost=1.0
        )
        merge = FakeMerge(sim)
        merge.connect(warehouse, 0.0)
        warehouse.connect(merge, 0.0)
        big = make_txn(1, ("V1",), 1, rows_count=20)
        small = make_txn(2, ("V1",), 2, rows_count=1)
        sim.schedule(0.0, merge.send, "warehouse", WarehouseTransactionMsg(big))
        sim.schedule(0.1, merge.send, "warehouse", WarehouseTransactionMsg(small))
        sim.run()
        assert merge.commits == [2, 1]  # the hazard, demonstrated

    def test_dependency_info_prevents_reorder(self):
        sim = Simulator()
        store = ViewStore(DEFS, SCHEMAS)
        warehouse = WarehouseProcess(
            sim, store, executors=2, per_txn_overhead=0.1, per_action_cost=1.0
        )
        merge = FakeMerge(sim)
        merge.connect(warehouse, 0.0)
        warehouse.connect(merge, 0.0)
        big = make_txn(1, ("V1",), 1, rows_count=20)
        small = make_txn(2, ("V1",), 2, rows_count=1)
        sim.schedule(0.0, merge.send, "warehouse", WarehouseTransactionMsg(big))
        sim.schedule(
            0.1, merge.send, "warehouse",
            WarehouseTransactionMsg(small, sequenced_after=(1,)),
        )
        sim.run()
        assert merge.commits == [1, 2]

    def test_dependency_without_support_rejected(self):
        sim = Simulator()
        store = ViewStore(DEFS, SCHEMAS)
        warehouse = WarehouseProcess(sim, store, supports_dependencies=False)
        merge = FakeMerge(sim)
        merge.connect(warehouse, 0.0)
        warehouse.connect(merge, 0.0)
        sim.schedule(
            0.0, merge.send, "warehouse",
            WarehouseTransactionMsg(make_txn(2, ("V1",), 2), sequenced_after=(1,)),
        )
        with pytest.raises(WarehouseError, match="does not support"):
            sim.run()

    def test_waiting_txn_commits_after_dependency(self):
        sim = Simulator()
        store = ViewStore(DEFS, SCHEMAS)
        warehouse = WarehouseProcess(
            sim, store, executors=3, per_txn_overhead=0.1, per_action_cost=1.0
        )
        merge = FakeMerge(sim)
        merge.connect(warehouse, 0.0)
        warehouse.connect(merge, 0.0)
        txns = [
            (make_txn(1, ("V1",), 1, rows_count=30), ()),
            (make_txn(2, ("V1",), 2, rows_count=1), (1,)),
            (make_txn(3, ("V2",), 3, rows_count=1), ()),
        ]
        for txn, deps in txns:
            sim.schedule(
                0.0, merge.send, "warehouse",
                WarehouseTransactionMsg(txn, sequenced_after=deps),
            )
        sim.run()
        # txn3 (independent) may commit first; txn2 must follow txn1.
        assert merge.commits.index(1) < merge.commits.index(2)
        assert warehouse.in_flight == 0
