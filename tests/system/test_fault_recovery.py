"""End-to-end fault recovery: MVC must survive an actively hostile network.

These are the acceptance tests for the fault-injection layer: a full
Figure-1 system run under a :class:`FaultPlan` (message drops, duplicates,
delay spikes, and a merge-process crash/restart) must still satisfy the
paper's multiple-view consistency definitions, because the reliable
channels and merge checkpoints recover exactly the guarantees the paper
assumes.  With ``reliable=False`` the same faults must be *detected* —
either a protocol error or an MVC violation — never silently absorbed.
"""

import pytest

from repro.errors import ReproError
from repro.faults import CrashSpec, FaultPlan
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example1, paper_world


def faulted_system(plan, seed=3, updates=25):
    world = paper_world()
    spec = WorkloadSpec(updates=updates, rate=2.0, seed=seed, mix=(0.7, 0.15, 0.15))
    system = WarehouseSystem(
        world, paper_views_example1(),
        SystemConfig(manager_kind="complete", seed=seed, fault_plan=plan),
    )
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    return system


CRASH_PLAN = FaultPlan(
    seed=17,
    drop_rate=0.02,
    duplicate_rate=0.01,
    delay_spike_rate=0.02,
    delay_spike=8.0,
    crashes=(CrashSpec("merge", at=12.0, restart_after=4.0),),
)


class TestRecovery:
    def test_mvc_preserved_under_drops_and_merge_crash(self):
        """The headline guarantee: >=1% drops plus a merge crash/restart,
        and the run is still MVC-complete."""
        system = faulted_system(CRASH_PLAN)
        system.run()
        merge = system.merge_processes[0]
        assert merge.crashes == 1
        assert merge.restores == 1
        assert merge.checkpoints_taken > 0
        assert system.check_mvc("complete").ok
        assert system.classify() == "complete"

    def test_faults_actually_fired(self):
        """The run above is only meaningful if the network really misbehaved."""
        system = faulted_system(CRASH_PLAN)
        system.run()
        drops = len(system.sim.trace.of_kind("msg_drop"))
        retransmissions = len(system.sim.trace.of_kind("msg_retransmit"))
        assert drops > 0
        assert retransmissions > 0

    def test_deterministic_under_faults(self):
        def run_once():
            system = faulted_system(CRASH_PLAN)
            system.run()
            return system.metrics().to_dict()

        assert run_once() == run_once()

    def test_clean_plan_matches_no_plan_semantics(self):
        """A zero-rate reliable plan still runs to a complete state."""
        system = faulted_system(FaultPlan(seed=1))
        system.run()
        assert system.check_mvc("complete").ok

    def test_heavier_faults_still_recover(self):
        plan = FaultPlan(seed=23, drop_rate=0.05, duplicate_rate=0.02,
                         delay_spike_rate=0.03, delay_spike=10.0)
        system = faulted_system(plan, updates=20)
        system.run()
        assert system.check_mvc("complete").ok


class TestUnreliableBaseline:
    def test_raw_lossy_network_breaks_loudly(self):
        """Without the recovery layer the paper's delivery assumptions are
        simply violated: the run must fail loudly (protocol error) or fail
        the MVC check — never pretend to be consistent."""
        plan = FaultPlan(seed=17, drop_rate=0.05, reliable=False)
        system = faulted_system(plan)
        try:
            system.run()
        except ReproError:
            return  # a dropped protocol message tripped an invariant: good
        assert not system.check_mvc("complete").ok

    def test_crash_without_checkpointing_channels_detected(self):
        plan = FaultPlan(
            seed=17, drop_rate=0.03, reliable=False,
            crashes=(CrashSpec("merge", at=12.0, restart_after=4.0),),
        )
        system = faulted_system(plan)
        try:
            system.run()
        except ReproError:
            return
        assert not system.check_mvc("complete").ok


class TestCrashScheduling:
    def test_unknown_process_name_rejected(self):
        from repro.errors import FaultError

        plan = FaultPlan(crashes=(CrashSpec("no-such-process", at=1.0),))
        with pytest.raises(FaultError, match="no-such-process"):
            faulted_system(plan)

    def test_view_manager_crash_recovers(self):
        """Crashing a stateless-ish process (a view manager) also recovers:
        its unacked input is simply retransmitted."""
        plan = FaultPlan(
            seed=5, drop_rate=0.01,
            crashes=(CrashSpec("vm:V1", at=8.0, restart_after=3.0),),
        )
        system = faulted_system(plan, updates=15)
        system.run()
        assert system.process_by_name("vm:V1").crashes == 1
        assert system.check_mvc("complete").ok
