"""End-to-end fault recovery: MVC must survive an actively hostile network.

These are the acceptance tests for the fault-injection layer: a full
Figure-1 system run under a :class:`FaultPlan` (message drops, duplicates,
delay spikes, and a merge-process crash/restart) must still satisfy the
paper's multiple-view consistency definitions, because the reliable
channels and merge checkpoints recover exactly the guarantees the paper
assumes.  With ``reliable=False`` the same faults must be *detected* —
either a protocol error or an MVC violation — never silently absorbed.
"""

import pytest

from repro.cache.store import CacheConfig
from repro.conformance.oracle import check_real_run
from repro.errors import ReproError
from repro.faults import CrashSpec, FaultPlan
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example1, paper_world


def faulted_system(plan, seed=3, updates=25, cache=False):
    world = paper_world()
    spec = WorkloadSpec(updates=updates, rate=2.0, seed=seed, mix=(0.7, 0.15, 0.15))
    system = WarehouseSystem(
        world, paper_views_example1(),
        SystemConfig(manager_kind="complete", seed=seed, fault_plan=plan,
                     cache=CacheConfig() if cache else None),
    )
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    return system


CRASH_PLAN = FaultPlan(
    seed=17,
    drop_rate=0.02,
    duplicate_rate=0.01,
    delay_spike_rate=0.02,
    delay_spike=8.0,
    crashes=(CrashSpec("merge", at=12.0, restart_after=4.0),),
)


class TestRecovery:
    def test_mvc_preserved_under_drops_and_merge_crash(self):
        """The headline guarantee: >=1% drops plus a merge crash/restart,
        and the run is still MVC-complete."""
        system = faulted_system(CRASH_PLAN)
        system.run()
        merge = system.merge_processes[0]
        assert merge.crashes == 1
        assert merge.restores == 1
        assert merge.checkpoints_taken > 0
        assert system.check_mvc("complete").ok
        assert system.classify() == "complete"

    def test_faults_actually_fired(self):
        """The run above is only meaningful if the network really misbehaved."""
        system = faulted_system(CRASH_PLAN)
        system.run()
        drops = len(system.sim.trace.of_kind("msg_drop"))
        retransmissions = len(system.sim.trace.of_kind("msg_retransmit"))
        assert drops > 0
        assert retransmissions > 0

    def test_deterministic_under_faults(self):
        def run_once():
            system = faulted_system(CRASH_PLAN)
            system.run()
            return system.metrics().to_dict()

        assert run_once() == run_once()

    def test_clean_plan_matches_no_plan_semantics(self):
        """A zero-rate reliable plan still runs to a complete state."""
        system = faulted_system(FaultPlan(seed=1))
        system.run()
        assert system.check_mvc("complete").ok

    def test_heavier_faults_still_recover(self):
        plan = FaultPlan(seed=23, drop_rate=0.05, duplicate_rate=0.02,
                         delay_spike_rate=0.03, delay_spike=10.0)
        system = faulted_system(plan, updates=20)
        system.run()
        assert system.check_mvc("complete").ok


class TestUnreliableBaseline:
    def test_raw_lossy_network_breaks_loudly(self):
        """Without the recovery layer the paper's delivery assumptions are
        simply violated: the run must fail loudly (protocol error) or fail
        the MVC check — never pretend to be consistent."""
        plan = FaultPlan(seed=17, drop_rate=0.05, reliable=False)
        system = faulted_system(plan)
        try:
            system.run()
        except ReproError:
            return  # a dropped protocol message tripped an invariant: good
        assert not system.check_mvc("complete").ok

    def test_crash_without_checkpointing_channels_detected(self):
        plan = FaultPlan(
            seed=17, drop_rate=0.03, reliable=False,
            crashes=(CrashSpec("merge", at=12.0, restart_after=4.0),),
        )
        system = faulted_system(plan)
        try:
            system.run()
        except ReproError:
            return
        assert not system.check_mvc("complete").ok


class TestCrashScheduling:
    def test_unknown_process_name_rejected(self):
        from repro.errors import FaultError

        plan = FaultPlan(crashes=(CrashSpec("no-such-process", at=1.0),))
        with pytest.raises(FaultError, match="no-such-process"):
            faulted_system(plan)

    def test_view_manager_crash_recovers(self):
        """Crashing a stateless-ish process (a view manager) also recovers:
        its unacked input is simply retransmitted."""
        plan = FaultPlan(
            seed=5, drop_rate=0.01,
            crashes=(CrashSpec("vm:V1", at=8.0, restart_after=3.0),),
        )
        system = faulted_system(plan, updates=15)
        system.run()
        assert system.process_by_name("vm:V1").crashes == 1
        assert system.check_mvc("complete").ok


CACHED_CRASH_PLAN = FaultPlan(
    seed=17,
    drop_rate=0.02,
    duplicate_rate=0.01,
    crashes=(
        CrashSpec("vm:V1", at=8.0, restart_after=3.0),
        CrashSpec("merge", at=12.0, restart_after=4.0),
    ),
)


class TestCachedRecovery:
    """Warm restart: crashed processes recover from the artifact store.

    The PR-1 path above replays lost work from retransmitted messages;
    with ``SystemConfig(cache=...)`` the crashed view manager and merge
    process instead restore the nearest published artifact and only
    replay what the artifact did not cover.  Same oracle, different
    recovery channel — and corruption must demote, not break."""

    def test_vm_and_merge_restore_from_artifacts(self):
        system = faulted_system(CACHED_CRASH_PLAN, cache=True)
        try:
            system.run()
            vm = system.process_by_name("vm:V1")
            merge = system.merge_processes[0]
            assert vm.crashes == 1
            assert vm.cache_restores == 1
            assert vm.cache_fallbacks == 0
            assert merge.crashes == 1
            assert merge.cache_restores == 1
            assert len(system.sim.trace.of_kind("cache_restore")) >= 1
            assert system.check_mvc("complete").ok
            assert system.classify() == "complete"
        finally:
            system.close()

    def test_cached_run_matches_uncached_semantics(self):
        def stores(cache):
            system = faulted_system(CACHED_CRASH_PLAN, cache=cache)
            try:
                system.run()
                assert system.check_mvc("complete").ok
                return {
                    name: dict(
                        system.warehouse.store.view(name).counts_view()
                    )
                    for name in system.warehouse.store.view_names
                }
            finally:
                system.close()

        assert stores(cache=True) == stores(cache=False)

    def test_cached_run_is_deterministic(self):
        def run_once():
            system = faulted_system(CACHED_CRASH_PLAN, cache=True)
            try:
                system.run()
                return system.metrics().to_dict()
            finally:
                system.close()

        assert run_once() == run_once()

    def test_corrupted_artifacts_fall_back_to_replay(self):
        """Every artifact is corrupted between crash and restart: the
        restore must *detect* the damage (verified reads), fall back to
        the PR-1 replay path, and still converge to MVC-complete."""
        plan = FaultPlan(
            seed=17,
            crashes=(CrashSpec("vm:V1", at=8.0, restart_after=3.0),),
        )
        system = faulted_system(plan, cache=True)

        def corrupt_every_artifact():
            store = system.cache_store
            for key in store.keys():
                path = store._object_path(key)
                raw = bytearray(path.read_bytes())
                raw[-1] ^= 0xFF
                path.write_bytes(bytes(raw))

        # Between the crash (8.0) and the restart (11.0).
        system.sim.schedule_at(9.5, corrupt_every_artifact)
        try:
            system.run()
            vm = system.process_by_name("vm:V1")
            assert vm.crashes == 1
            assert vm.cache_restores == 0
            assert vm.cache_fallbacks == 1
            assert len(system.sim.trace.of_kind("cache_fallback")) == 1
            assert system.cache_store.integrity_failures >= 1
            assert system.check_mvc("complete").ok
        finally:
            system.close()


class TestThreadsRuntimeCrash:
    """Crash/restart on the wall-clock runtime (the latent PR-1 gap: only
    merge checkpoints were covered, and only under DES).

    Parallel runtimes reject fault plans (no virtual-time timers), so the
    crash is driven directly between ``run()`` calls — the kernel is
    single-threaded then, which is exactly when a real deployment would
    observe a dead worker — and the full history-level oracle judges the
    result."""

    def _threads_system(self, cache, seed=7, updates=24):
        world = paper_world()
        system = WarehouseSystem(
            world, paper_views_example1(),
            SystemConfig(
                manager_kind="complete", seed=seed, runtime="threads",
                workers=2, cache=CacheConfig() if cache else None,
            ),
        )
        spec = WorkloadSpec(updates=updates, rate=2.0, seed=seed,
                            mix=(0.7, 0.15, 0.15))
        stream = list(UpdateStreamGenerator(world, spec).transactions())
        half = len(stream) // 2
        return system, stream[:half], stream[half:]

    @pytest.mark.parametrize("cache", [False, True], ids=["replay", "cached"])
    def test_view_manager_crash_between_runs(self, cache):
        system, first, second = self._threads_system(cache)
        try:
            post_stream(system, first)
            system.run()
            vm = system.process_by_name("vm:V1")
            vm.crash()
            vm.restart()
            post_stream(system, second)
            system.run()
            assert vm.crashes == 1
            if cache:
                assert vm.cache_restores == 1
            report = check_real_run(system)
            assert report.ok, [str(v) for v in report.violations]
            assert report.runtime == "threads"
        finally:
            system.close()

    def test_merge_crash_between_runs_with_cache(self):
        system, first, second = self._threads_system(cache=True)
        try:
            post_stream(system, first)
            system.run()
            merge = system.merge_processes[0]
            merge.crash()
            merge.restart()
            post_stream(system, second)
            system.run()
            assert merge.crashes == 1
            assert merge.cache_restores == 1
            report = check_real_run(system)
            assert report.ok, [str(v) for v in report.violations]
        finally:
            system.close()
