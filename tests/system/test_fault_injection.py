"""Failure injection: broken components must be *caught*, not absorbed.

The consistency checkers are only trustworthy oracles if they actually
fire when something is wrong.  Each test here sabotages one component of
an otherwise healthy system and asserts the failure is detected — either
by a protocol error at the merge process or by the MVC checker.
"""

import pytest

from repro.errors import MergeError
from repro.merge.spa import SimplePaintingAlgorithm
from repro.messages import ActionListMessage
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.viewmgr.actions import ActionList
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example1, paper_world

from tests.conftest import make_al


def healthy_system(seed=3, updates=25):
    world = paper_world()
    spec = WorkloadSpec(updates=updates, rate=2.0, seed=seed, mix=(0.7, 0.15, 0.15))
    system = WarehouseSystem(world, paper_views_example1(),
                             SystemConfig(manager_kind="complete", seed=seed))
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    return system


class TestCorruptedDeltas:
    def test_wrong_delta_detected_by_checker(self):
        """A view manager whose deltas are off by one row fails MVC."""
        system = healthy_system()
        manager = system.view_managers["V1"]
        original_emit = manager._emit

        def corrupted_emit(covered, view_delta, epoch=None):
            poisoned = view_delta.combined(Delta.insert(Row(A=99, B=99, C=99)))
            original_emit(covered, poisoned, epoch)

        manager._emit = corrupted_emit
        system.run()
        assert not system.check_mvc("complete")
        assert system.classify() == "inconsistent"

    def test_dropped_delta_detected(self):
        """A manager that silently swallows deltas fails convergence."""
        system = healthy_system()
        manager = system.view_managers["V1"]
        original_emit = manager._emit

        def lossy_emit(covered, view_delta, epoch=None):
            original_emit(covered, Delta(), epoch)  # content gone, protocol kept

        manager._emit = lossy_emit
        system.run()
        assert not system.check_mvc("complete")
        # Not even convergent: V1 never receives its rows.
        assert system.classify() == "inconsistent"


class TestProtocolViolations:
    def test_duplicate_action_list_rejected(self):
        spa = SimplePaintingAlgorithm(("V1",))
        spa.receive_rel(1, frozenset({"V1"}))
        spa.receive_action_list(make_al("V1", [1]))
        with pytest.raises(MergeError):
            spa.receive_action_list(make_al("V1", [1]))

    def test_action_list_for_foreign_view_rejected(self):
        spa = SimplePaintingAlgorithm(("V1",))
        with pytest.raises(MergeError, match="not handled by merge"):
            spa.receive_action_list(make_al("V9", [1]))

    def test_reordered_manager_stream_rejected(self):
        """Violating the per-channel FIFO assumption is caught loudly."""
        spa = SimplePaintingAlgorithm(("V1",))
        spa.receive_rel(1, frozenset({"V1"}))
        spa.receive_rel(2, frozenset({"V1"}))
        spa.receive_action_list(make_al("V1", [2], manager="m"))
        with pytest.raises(MergeError, match="overlaps an earlier list"):
            spa.receive_action_list(make_al("V1", [1], manager="m"))

    def test_forged_action_list_for_irrelevant_update(self):
        spa = SimplePaintingAlgorithm(("V1", "V2"))
        spa.receive_rel(1, frozenset({"V2"}))  # V1 not relevant
        with pytest.raises(MergeError, match="expected white"):
            spa.receive_action_list(make_al("V1", [1]))


class TestMisbehavingMergeInput:
    def test_injected_rogue_action_list_crashes_not_corrupts(self):
        """An AL forged by a stranger (unknown manager, bogus ids) cannot
        silently corrupt the warehouse — the merge raises instead."""
        system = healthy_system(updates=5)
        system.run()  # healthy part completes first
        merge = system.merge_processes[0]
        rogue = ActionList.from_delta(
            "V1", "intruder", (1,), Delta.insert(Row(A=1, B=1, C=1))
        )
        with pytest.raises(MergeError):
            merge.algorithm.receive_action_list(rogue)

    def test_naive_manager_detected_end_to_end(self):
        """The deliberately broken manager produces a detectable run."""
        world = paper_world()
        system = WarehouseSystem(
            world, paper_views_example1(),
            SystemConfig(manager_kind="naive"),
        )
        # The intertwined pattern of Example 1: S insert concurrent with
        # an R insert that joins it.
        system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
        system.post_update(Update.insert("R", {"A": 7, "B": 2}), at=1.1)
        system.run()
        assert system.classify() == "inconsistent"
