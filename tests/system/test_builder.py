"""Tests for system assembly and configuration."""

import pytest

from repro.errors import ReproError
from repro.merge.complete_n import CompleteNMerge
from repro.merge.pa import PaintingAlgorithm
from repro.merge.passthrough import PassThroughMerge
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.submission import (
    BatchingPolicy,
    DbmsDependencyPolicy,
    DependencySequencedPolicy,
    EagerPolicy,
    SequentialPolicy,
)
from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import (
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_world,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        SystemConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"manager_kind": "psychic"},
            {"merge_algorithm": "nope"},
            {"submission_policy": "yolo"},
            {"merge_groups": 0},
            {"block_size": 0},
            {"manager_kinds": {"V1": "psychic"}},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ReproError):
            SystemConfig(**kwargs)

    def test_manager_levels(self):
        config = SystemConfig(
            manager_kind="complete", manager_kinds={"V2": "strong"}
        )
        assert config.manager_levels(("V1", "V2")) == ["complete", "strong"]


class TestAssembly:
    def test_figure1_components(self):
        system = WarehouseSystem(paper_world(), paper_views_example2())
        assert set(system.view_managers) == {"V1", "V2", "V3"}
        assert len(system.merge_processes) == 1
        assert system.merge_processes[0].name == "merge"
        assert system.warehouse.name == "warehouse"
        assert len(system.sources) == 4

    def test_algorithm_selection_auto(self):
        complete = WarehouseSystem(paper_world(), paper_views_example1())
        assert isinstance(
            complete.merge_processes[0].algorithm, SimplePaintingAlgorithm
        )
        strong = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(manager_kind="strong"),
        )
        assert isinstance(strong.merge_processes[0].algorithm, PaintingAlgorithm)
        mixed = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(manager_kinds={"V2": "convergent"}),
        )
        assert isinstance(mixed.merge_processes[0].algorithm, PassThroughMerge)
        blocks = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(manager_kind="complete-n", block_size=3),
        )
        assert isinstance(blocks.merge_processes[0].algorithm, CompleteNMerge)

    def test_explicit_algorithm_override(self):
        system = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(merge_algorithm="pa"),
        )
        assert isinstance(system.merge_processes[0].algorithm, PaintingAlgorithm)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("eager", EagerPolicy),
            ("sequential", SequentialPolicy),
            ("dependency-sequenced", DependencySequencedPolicy),
            ("dbms-dependency", DbmsDependencyPolicy),
            ("batching", BatchingPolicy),
        ],
    )
    def test_policy_selection(self, name, cls):
        system = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(submission_policy=name),
        )
        assert isinstance(system.merge_processes[0].policy, cls)

    def test_distributed_merge_partitioning(self):
        system = WarehouseSystem(
            paper_world(), paper_views_example3(),
            SystemConfig(merge_groups=4),
        )
        names = [m.name for m in system.merge_processes]
        assert names == ["merge0", "merge1"]
        assert system.merge_processes[0].algorithm.views == ("V1", "V2")
        assert system.merge_processes[1].algorithm.views == ("V3",)

    def test_distributed_merges_pick_per_group_algorithms(self):
        """§6.3's weakest-level rule applies per merge group: the group
        with only complete managers keeps SPA while the group containing
        a strong manager gets PA."""
        system = WarehouseSystem(
            paper_world(), paper_views_example3(),
            SystemConfig(
                manager_kind="complete",
                manager_kinds={"V3": "strong"},  # V3 is its own group
                merge_groups=4,
            ),
        )
        algorithms = {
            m.name: type(m.algorithm).__name__ for m in system.merge_processes
        }
        assert algorithms["merge0"] == "SimplePaintingAlgorithm"  # V1,V2
        assert algorithms["merge1"] == "PaintingAlgorithm"  # V3

    def test_views_materialized_at_initial_state(self):
        world = paper_world()  # R={[1,2]}, T={[3,4]}, S=Q empty
        system = WarehouseSystem(world, paper_views_example1())
        assert len(system.store.view("V1")) == 0
        assert len(system.store.view("V2")) == 0

    def test_needs_views(self):
        with pytest.raises(ReproError):
            WarehouseSystem(paper_world(), [])

    def test_post_unknown_source(self):
        from repro.sources.transactions import SourceTransaction

        system = WarehouseSystem(paper_world(), paper_views_example1())
        txn = SourceTransaction.single("ghost", Update.insert("R", {"A": 1, "B": 1}))
        with pytest.raises(ReproError):
            system.post(txn, 1.0)

    def test_expected_level(self):
        complete = WarehouseSystem(paper_world(), paper_views_example1())
        assert complete.expected_level() == "complete"
        strong = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(manager_kind="strong"),
        )
        assert strong.expected_level() == "strong"
        batching = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(submission_policy="batching"),
        )
        assert batching.expected_level() == "strong"
        convergent = WarehouseSystem(
            paper_world(), paper_views_example1(),
            SystemConfig(manager_kind="convergent"),
        )
        assert convergent.expected_level() == "convergent"
