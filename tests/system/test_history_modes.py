"""Memory-lean operation: record_history=False.

Long-lived deployments cannot keep a snapshot per warehouse transaction.
With history recording off, the store keeps only the initial and latest
states; runs can still be checked for *convergence* (final state), just
not for the stronger levels.
"""

from repro.relational.algebra import evaluate
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world


def test_history_off_long_run_converges():
    world = paper_world()
    spec = WorkloadSpec(updates=400, rate=4.0, seed=77,
                        mix=(0.5, 0.25, 0.25), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world, paper_views_example2(),
        SystemConfig(
            manager_kind="strong",
            record_history=False,
            trace_enabled=False,
            seed=77,
        ),
    )
    post_stream(system, stream)
    system.run()

    # Only two states retained regardless of run length.
    assert len(system.history) == 2
    # The final contents equal the definitions evaluated at the final
    # source state — convergence, checked directly.
    final_source = system.source_states()[-1]
    for definition in system.definitions:
        expected = evaluate(definition.expression, final_source)
        assert system.store.view(definition.name) == expected


def test_history_off_current_state_still_advances():
    world = paper_world()
    system = WarehouseSystem(
        world, paper_views_example2(),
        SystemConfig(record_history=False),
    )
    from repro.sources.update import Update

    system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
    system.run()
    assert system.store.current_state.txn_id != -1
    assert len(system.store.view("V1")) == 1
