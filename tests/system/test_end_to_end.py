"""End-to-end runs of the full Figure-1 system against the MVC oracles."""

import pytest

from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import (
    bank_views,
    bank_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_world,
    star_views,
    star_world,
)


def run_paper_system(config, updates=40, seed=7, views=None, world=None):
    world = world or paper_world()
    spec = WorkloadSpec(
        updates=updates, rate=2.0, seed=seed,
        mix=(0.5, 0.25, 0.25), arrivals="poisson",
    )
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(world, views or paper_views_example2(), config)
    post_stream(system, stream)
    system.run()
    return system


class TestTable1:
    """Example 1 / Table 1 end to end."""

    def test_both_views_update_atomically(self):
        world = paper_world()
        system = WarehouseSystem(world, paper_views_example1())
        system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
        system.run()
        # Exactly one warehouse transaction; both views move together.
        assert len(system.history) == 2
        final = system.history[-1]
        assert final.view("V1").sorted_rows() == [{"A": 1, "B": 2, "C": 3}] or \
            [dict(r) for r in final.view("V1").sorted_rows()] == [
                {"A": 1, "B": 2, "C": 3}
            ]
        assert len(final.view("V2")) == 1
        assert system.check_mvc("complete")


class TestGuarantees:
    def test_complete_managers_spa_is_mvc_complete(self):
        system = run_paper_system(SystemConfig(manager_kind="complete"))
        report = system.check_mvc("complete")
        assert report, report.reason
        assert system.classify() == "complete"

    def test_strong_managers_pa_is_mvc_strong(self):
        system = run_paper_system(SystemConfig(manager_kind="strong"))
        assert system.check_mvc("strong")

    def test_snapshot_mode(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete", manager_mode="snapshot"),
            updates=25,
        )
        assert system.check_mvc("complete")

    def test_compensate_mode(self):
        system = run_paper_system(
            SystemConfig(manager_kind="strong", manager_mode="compensate"),
            updates=25,
        )
        assert system.check_mvc("strong")

    def test_batching_degrades_to_strong(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete", submission_policy="batching")
        )
        assert system.check_mvc("strong")

    def test_convergent_fleet_converges(self):
        system = run_paper_system(SystemConfig(manager_kind="convergent"))
        assert system.check_mvc("convergent")

    def test_mixed_fleet_weakest_level(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete", manager_kinds={"V2": "strong"})
        )
        assert system.expected_level() == "strong"
        assert system.check_mvc("strong")

    def test_complete_n_fleet(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete-n", block_size=5), updates=23
        )
        # Partial trailing block is flushed by run(); result is strong.
        assert system.check_mvc("strong")
        assert system.warehouse.commits <= 6

    def test_periodic_fleet(self):
        system = run_paper_system(
            SystemConfig(manager_kind="periodic", refresh_period=15.0),
            updates=30,
        )
        assert system.check_mvc("strong")


class TestHazards:
    def test_eager_policy_with_parallel_warehouse_breaks_mvc(self):
        """The §4.3 commit-order hazard, reproduced end to end."""
        system = run_paper_system(
            SystemConfig(
                manager_kind="complete",
                submission_policy="eager",
                warehouse_executors=4,
                warehouse_action_cost=2.0,
            ),
            updates=40,
        )
        assert system.classify() in ("convergent", "inconsistent")

    def test_dbms_dependencies_fix_the_hazard(self):
        system = run_paper_system(
            SystemConfig(
                manager_kind="complete",
                submission_policy="dbms-dependency",
                warehouse_executors=4,
                warehouse_action_cost=2.0,
            ),
            updates=40,
        )
        assert system.check_mvc("complete")


class TestDistributedMerge:
    def test_two_merges_preserve_completeness(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete", merge_groups=4),
            views=paper_views_example3(),
        )
        assert len(system.merge_processes) == 2
        assert system.check_mvc("complete")

    def test_transaction_ids_globally_unique(self):
        system = run_paper_system(
            SystemConfig(manager_kind="complete", merge_groups=4),
            views=paper_views_example3(),
        )
        ids = [s.txn_id for s in system.history[1:]]
        assert len(ids) == len(set(ids))


class TestMultiSource:
    def test_global_transaction_atomic_across_views(self):
        world = paper_world()
        system = WarehouseSystem(world, paper_views_example1())
        system.post_global(
            [Update.insert("R", {"A": 5, "B": 6}),
             Update.insert("T", {"C": 8, "D": 9})],
            at=1.0,
        )
        system.post_update(Update.insert("S", {"B": 6, "C": 8}), at=2.0)
        system.run()
        assert system.check_mvc("complete")
        # The global txn got one VUT row / one warehouse transaction.
        assert system.history[1].covered_rows == (1,)

    def test_multi_update_stream(self):
        world = paper_world()
        spec = WorkloadSpec(
            updates=30, rate=2.0, seed=11, multi_update_fraction=0.5
        )
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(world, paper_views_example2(),
                                 SystemConfig(manager_kind="complete"))
        post_stream(system, stream)
        system.run()
        assert system.check_mvc("complete")


class TestAggregateViews:
    def test_aggregate_views_maintained_mvc_complete(self):
        """Summary views ride the same machinery, incrementally (§1.2)."""
        world = star_world()
        spec = WorkloadSpec(updates=40, rate=1.5, seed=31, value_range=10,
                            mix=(0.6, 0.2, 0.2))
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(
            world, star_views(aggregates=True),
            SystemConfig(manager_kind="complete"),
        )
        post_stream(system, stream)
        system.run()
        assert system.check_mvc("complete")

    def test_aggregate_views_under_strong_managers(self):
        world = star_world()
        spec = WorkloadSpec(updates=40, rate=3.0, seed=33, value_range=10)
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(
            world, star_views(aggregates=True),
            SystemConfig(manager_kind="strong"),
        )
        post_stream(system, stream)
        system.run()
        assert system.check_mvc("strong")


class TestOtherWorkloads:
    def test_bank_world_runs_complete(self):
        world = bank_world(customers=5)
        spec = WorkloadSpec(updates=30, rate=1.0, seed=3, value_range=6)
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(world, bank_views(),
                                 SystemConfig(manager_kind="complete"))
        post_stream(system, stream)
        system.run()
        assert system.check_mvc("complete")

    def test_filtering_survives_modify_across_selection_boundary(self):
        """Regression: a row inserted below a view's selection threshold
        and later modified above it must not underflow the sigma-restricted
        replica (the filtered insert never reached the manager)."""
        world = star_world()
        system = WarehouseSystem(
            world, star_views(),
            SystemConfig(manager_kind="complete", use_selection_filtering=True),
        )
        low = {"sale": 1, "prod": 0, "store": 0, "qty": 2}
        high = dict(low, qty=9)
        system.post_update(Update.insert("Sales", low), at=1.0)
        system.post_update(Update.modify("Sales", low, high), at=2.0)
        system.post_update(Update.modify("Sales", high, low), at=3.0)
        system.run()
        assert system.check_mvc("complete")
        assert len(system.store.view("BigTickets")) == 0

    def test_star_world_with_selection_filtering(self):
        world = star_world()
        spec = WorkloadSpec(updates=40, rate=1.0, seed=5, value_range=12)
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(
            world, star_views(),
            SystemConfig(manager_kind="complete", use_selection_filtering=True),
        )
        post_stream(system, stream)
        system.run()
        assert system.check_mvc("complete")
        assert system.integrator.filtered_out > 0
