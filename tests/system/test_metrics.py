"""Tests for run metrics."""

import pytest

from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.system.metrics import _percentile, collect_metrics, staleness_per_update
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example1, paper_world


@pytest.fixture(scope="module")
def finished_system():
    world = paper_world()
    spec = WorkloadSpec(updates=20, rate=2.0, seed=4, mix=(0.7, 0.15, 0.15))
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(world, paper_views_example1(),
                             SystemConfig(manager_kind="complete"))
    post_stream(system, stream)
    system.run()
    return system


class TestStaleness:
    def test_every_reflected_update_has_positive_lag(self, finished_system):
        lags = staleness_per_update(finished_system)
        assert lags
        assert all(lag > 0 for lag in lags.values())

    def test_visibility_uses_first_covering_state(self):
        world = paper_world()
        system = WarehouseSystem(world, paper_views_example1())
        system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
        system.run()
        lags = staleness_per_update(system)
        state_time = system.history[1].time
        assert lags[1] == pytest.approx(state_time - 1.0)


class TestPercentile:
    """Pins the linear-interpolation behaviour (regression for the old
    nearest-rank-via-round(), which biased p95 to the max on small samples)."""

    def test_empty_and_singleton(self):
        assert _percentile([], 0.95) == 0.0
        assert _percentile([3.0], 0.95) == 3.0

    def test_interpolates_between_order_statistics(self):
        # position = 0.95 * 9 = 8.55 -> 9 + 0.55 * (10 - 9)
        values = [float(i) for i in range(1, 11)]
        assert _percentile(values, 0.95) == pytest.approx(9.55)
        # position = 0.5 * 3 = 1.5 -> midpoint of the middle pair
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert _percentile(values, 0.0) == 1.0
        assert _percentile(values, 1.0) == 5.0

    def test_unsorted_input_handled(self):
        assert _percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_small_sample_not_biased_to_max(self):
        # The old round() implementation returned 10.0 (the max) here.
        values = [float(i) for i in range(1, 11)]
        assert _percentile(values, 0.95) < max(values)


class TestCollect:
    def test_metrics_fields(self, finished_system):
        metrics = collect_metrics(finished_system)
        assert metrics.updates_committed == 20
        assert metrics.warehouse_transactions == finished_system.warehouse.commits
        assert metrics.makespan == finished_system.sim.now
        assert 0 < metrics.mean_staleness <= metrics.max_staleness
        assert metrics.p95_staleness <= metrics.max_staleness
        assert metrics.throughput > 0
        assert metrics.vut_peak >= 1

    def test_per_process_stats_present(self, finished_system):
        metrics = finished_system.metrics()
        for name in ("integrator", "merge", "warehouse", "vm:V1", "vm:V2"):
            stats = metrics.process(name)
            assert stats.messages_handled > 0
        assert metrics.messages_total >= sum(
            1 for _ in ("integrator", "merge", "warehouse")
        )

    def test_format_row(self, finished_system):
        text = finished_system.metrics().format_row()
        assert "staleness" in text and "updates=20" in text

    def test_to_dict_is_json_serialisable(self, finished_system):
        import json

        record = finished_system.metrics().to_dict()
        text = json.dumps(record)
        assert "warehouse_transactions" in text
        assert record["updates_committed"] == 20
        assert "merge" in record["processes"]


class TestTraceExport:
    def test_trace_records_serialisable(self, finished_system):
        import json

        records = finished_system.sim.trace.to_records("wh_commit")
        assert records
        assert all(r["kind"] == "wh_commit" for r in records)
        json.dumps(records, default=str)

    def test_trace_records_unfiltered(self, finished_system):
        assert len(finished_system.sim.trace.to_records()) == len(
            finished_system.sim.trace
        )
