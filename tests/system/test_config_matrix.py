"""The promise matrix: every (manager kind x safe policy) combination
must verify the MVC level the configuration promises.

This is the compact end-to-end contract of the whole library: whatever
knobs a user turns (within the safe set), `expected_level()` states the
guarantee and the run delivers it.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world

KINDS = ("complete", "strong", "complete-n", "periodic", "convergent")
SAFE_POLICIES = (
    "sequential",
    "dependency-sequenced",
    "dbms-dependency",
    "batching",
)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("policy", SAFE_POLICIES)
def test_promise_matrix(kind, policy):
    world = paper_world()
    spec = WorkloadSpec(updates=25, rate=2.0, seed=13,
                        mix=(0.6, 0.2, 0.2), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        paper_views_example2(),
        SystemConfig(
            manager_kind=kind,
            submission_policy=policy,
            block_size=4,
            refresh_period=15.0,
            seed=13,
            trace_enabled=False,
        ),
    )
    post_stream(system, stream)
    system.run()
    promised = system.expected_level()
    report = system.check_mvc(promised)
    assert report, (
        f"{kind} managers under the {policy} policy promised "
        f"{promised} but failed: {report.reason}"
    )


@given(
    kind=st.sampled_from(KINDS),
    policy=st.sampled_from(SAFE_POLICIES),
    mode=st.sampled_from(["cached", "snapshot", "compensate"]),
    groups=st.sampled_from([1, 4]),
    filtering=st.booleans(),
    executors=st.sampled_from([1, 3]),
    seed=st.integers(min_value=0, max_value=5_000),
)
@settings(max_examples=30, deadline=None)
def test_randomized_safe_configurations_meet_their_promise(
    kind, policy, mode, groups, filtering, executors, seed
):
    """The capstone property: ANY safe configuration delivers its promise."""
    from repro.workloads.schemas import paper_views_example3

    if kind in ("periodic", "convergent"):
        mode = "cached"  # these managers recompute/derive locally
    world = paper_world()
    spec = WorkloadSpec(updates=15, rate=2.0, seed=seed,
                        mix=(0.6, 0.2, 0.2), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        paper_views_example3(),
        SystemConfig(
            manager_kind=kind,
            submission_policy=policy,
            manager_mode=mode,
            merge_groups=groups,
            use_selection_filtering=filtering,
            warehouse_executors=executors,
            block_size=3,
            refresh_period=12.0,
            seed=seed,
            trace_enabled=False,
        ),
    )
    post_stream(system, stream)
    system.run()
    promised = system.expected_level()
    report = system.check_mvc(promised)
    assert report, (
        f"kind={kind} policy={policy} mode={mode} groups={groups} "
        f"filtering={filtering} executors={executors} seed={seed}: "
        f"promised {promised}, got: {report.reason}"
    )
