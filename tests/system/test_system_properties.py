"""Whole-system property tests.

Theorem 4.1 and Theorem 5.1, empirically: for ANY seeded workload and ANY
latency-induced interleaving, a complete fleet under SPA yields an
MVC-complete run and a strong fleet under PA an MVC-strongly-consistent
run.  These are the library's headline guarantees, so they get hammered
across random seeds, rates, mixes and channel latencies.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.network import ExponentialLatency, UniformLatency
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world


def build_and_run(seed, kind, policy, jitter, updates=25):
    world = paper_world()
    spec = WorkloadSpec(
        updates=updates,
        rate=2.0,
        seed=seed,
        mix=(0.5, 0.25, 0.25),
        arrivals="poisson",
    )
    stream = UpdateStreamGenerator(world, spec).transactions()
    config = SystemConfig(
        manager_kind=kind,
        submission_policy=policy,
        seed=seed,
        # Randomised latencies shake out arrival-order corner cases.
        latency_integrator_vm=UniformLatency(0.0, jitter),
        latency_vm_merge=UniformLatency(0.0, jitter),
        latency_integrator_merge=UniformLatency(0.0, jitter),
        record_history=True,
        trace_enabled=False,
    )
    system = WarehouseSystem(world, paper_views_example2(), config)
    post_stream(system, stream)
    system.run()
    return system


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    jitter=st.floats(min_value=0.0, max_value=8.0),
    policy=st.sampled_from(["sequential", "dependency-sequenced", "dbms-dependency"]),
)
@settings(max_examples=25, deadline=None)
def test_spa_runs_are_mvc_complete(seed, jitter, policy):
    system = build_and_run(seed, "complete", policy, jitter)
    report = system.check_mvc("complete")
    assert report, report.reason


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    jitter=st.floats(min_value=0.0, max_value=8.0),
)
@settings(max_examples=25, deadline=None)
def test_pa_runs_are_mvc_strong(seed, jitter):
    system = build_and_run(seed, "strong", "dependency-sequenced", jitter)
    report = system.check_mvc("strong")
    assert report, report.reason


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None)
def test_heavy_tailed_latencies_do_not_break_mvc(seed):
    """Exponential (unbounded) channel latencies: extreme reordering
    between channels, FIFO within each — MVC must still hold."""
    world = paper_world()
    spec = WorkloadSpec(updates=20, rate=3.0, seed=seed,
                        mix=(0.5, 0.25, 0.25), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world, paper_views_example2(),
        SystemConfig(
            manager_kind="complete",
            latency_integrator_vm=ExponentialLatency(3.0),
            latency_vm_merge=ExponentialLatency(3.0),
            latency_integrator_merge=ExponentialLatency(3.0),
            seed=seed,
            trace_enabled=False,
        ),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc("complete")
    assert report, report.reason


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_batching_runs_are_mvc_strong(seed):
    system = build_and_run(seed, "complete", "batching", jitter=2.0)
    report = system.check_mvc("strong")
    assert report, report.reason


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    groups=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=15, deadline=None)
def test_distributed_merge_preserves_completeness(seed, groups):
    from repro.workloads.schemas import paper_views_example3

    world = paper_world()
    spec = WorkloadSpec(updates=25, rate=2.0, seed=seed,
                        mix=(0.5, 0.25, 0.25), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world, paper_views_example3(),
        SystemConfig(manager_kind="complete", merge_groups=groups,
                     seed=seed, trace_enabled=False),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc("complete")
    assert report, report.reason


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_selection_filtering_preserves_completeness(seed):
    from repro.workloads.schemas import star_views, star_world

    world = star_world()
    spec = WorkloadSpec(updates=30, rate=2.0, seed=seed,
                        mix=(0.5, 0.3, 0.2), value_range=12)
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world, star_views(selective=True),
        SystemConfig(manager_kind="complete", use_selection_filtering=True,
                     seed=seed, trace_enabled=False),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc("complete")
    assert report, report.reason


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_aggregate_views_preserve_completeness(seed):
    from repro.workloads.schemas import star_views, star_world

    world = star_world()
    spec = WorkloadSpec(updates=25, rate=2.0, seed=seed, value_range=10,
                        mix=(0.5, 0.3, 0.2))
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world, star_views(selective=False, aggregates=True),
        SystemConfig(manager_kind="complete", seed=seed, trace_enabled=False),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc("complete")
    assert report, report.reason


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_promptness_nothing_left_behind(seed):
    """Once the stream drains, no merge or manager holds anything."""
    system = build_and_run(seed, "complete", "dependency-sequenced", 4.0)
    assert all(m.idle() for m in system.merge_processes)
    assert all(vm.idle() for vm in system.view_managers.values())
    assert system.warehouse.in_flight == 0
