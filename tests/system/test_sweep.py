"""Tests for the parameter-sweep utility."""

from repro.system.config import SystemConfig
from repro.system.sweep import SweepRow, format_sweep, sweep
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example1, paper_world


def run_small_sweep():
    return sweep(
        world_factory=paper_world,
        views_factory=paper_views_example1,
        spec=WorkloadSpec(updates=15, rate=2.0, seed=3, mix=(0.7, 0.15, 0.15)),
        variants={
            "spa": SystemConfig(manager_kind="complete", seed=3),
            "pa": SystemConfig(manager_kind="strong", seed=3),
        },
    )


class TestSweep:
    def test_one_row_per_variant(self):
        rows = run_small_sweep()
        assert [r.name for r in rows] == ["spa", "pa"]

    def test_levels_and_verification(self):
        rows = {r.name: r for r in run_small_sweep()}
        assert rows["spa"].mvc_level == "complete"
        assert rows["pa"].expected_level == "strong"
        assert all(r.verified for r in run_small_sweep())

    def test_identical_workload_across_variants(self):
        rows = run_small_sweep()
        committed = {r.metrics.updates_committed for r in rows}
        assert committed == {15}

    def test_metrics_populated(self):
        row = run_small_sweep()[0]
        assert row.metrics.makespan > 0
        assert row.metrics.warehouse_transactions > 0

    def test_verified_ordering(self):
        good = SweepRow("x", run_small_sweep()[0].metrics, "complete", "strong")
        bad = SweepRow("x", run_small_sweep()[0].metrics, "convergent", "strong")
        assert good.verified and not bad.verified


class TestFormat:
    def test_table_contains_variants_and_headers(self):
        text = format_sweep(run_small_sweep())
        assert "variant" in text and "spa" in text and "pa" in text
        assert "makespan" in text

    def test_empty_rows(self):
        text = format_sweep([])
        assert "variant" in text
