"""Medium-scale soak: a few hundred updates through every pipeline stage.

These runs are larger than the property tests (hundreds of updates, all
update kinds, multi-update transactions, random latencies) and exist to
catch anything that only shows up with depth: purge bookkeeping over long
VUT lifetimes, replica drift, id exhaustion, queue accounting.
"""

import pytest

from repro.sim.network import UniformLatency
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import (
    clustered_views,
    clustered_world,
    paper_views_example2,
    paper_world,
)


@pytest.mark.parametrize(
    "kind,level",
    [("complete", "complete"), ("strong", "strong")],
)
def test_soak_300_updates(kind, level):
    world = paper_world()
    spec = WorkloadSpec(
        updates=300,
        rate=4.0,
        seed=99,
        mix=(0.5, 0.25, 0.25),
        multi_update_fraction=0.1,
        arrivals="poisson",
        hot_fraction=0.3,
        hot_keys=2,
    )
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        paper_views_example2(),
        SystemConfig(
            manager_kind=kind,
            latency_integrator_vm=UniformLatency(0.1, 3.0),
            latency_vm_merge=UniformLatency(0.1, 3.0),
            seed=99,
            trace_enabled=False,
        ),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc(level)
    assert report, report.reason
    # Everything drained: no stuck rows, no queued work, no in-flight txns.
    assert all(m.idle() for m in system.merge_processes)
    assert all(vm.idle() for vm in system.view_managers.values())
    assert system.warehouse.in_flight == 0
    # Every committed update was reflected.
    metrics = system.metrics()
    assert metrics.updates_reflected == metrics.updates_committed == 300


def test_soak_distributed_clustered():
    world = clustered_world(4)
    spec = WorkloadSpec(
        updates=300, rate=5.0, seed=123, mix=(0.6, 0.2, 0.2),
        arrivals="poisson", value_range=5,
    )
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        clustered_views(4, per_cluster=3),
        SystemConfig(
            manager_kind="complete",
            merge_groups=4,
            submission_policy="dbms-dependency",
            warehouse_executors=4,
            seed=123,
            trace_enabled=False,
        ),
    )
    post_stream(system, stream)
    system.run()
    report = system.check_mvc("complete")
    assert report, report.reason
    # Transaction ids from the four merges never collided.
    ids = [state.txn_id for state in system.history[1:]]
    assert len(ids) == len(set(ids))
