"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.schema == "paper"
        assert args.manager == "complete"

    def test_bad_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--manager", "psychic"])


class TestDemo:
    def test_demo_prints_states_and_verdict(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MVC level achieved: complete" in out


class TestTrace:
    @pytest.mark.parametrize("example", ["2", "3", "4", "5"])
    def test_traces_render(self, example, capsys):
        assert main(["trace", example]) == 0
        out = capsys.readouterr().out
        assert f"Example {example}" in out
        assert "V1" in out and "U1" in out

    def test_example5_applies_rows_together(self, capsys):
        main(["trace", "5"])
        out = capsys.readouterr().out
        assert "applied {U2,U3}" in out


class TestRun:
    def test_run_paper_complete(self, capsys):
        code = main(["run", "--updates", "30", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "achieved MVC level: complete" in out
        assert "verification: OK" in out

    def test_run_strong_with_options(self, capsys):
        code = main(
            [
                "run", "--schema", "bank", "--manager", "strong",
                "--policy", "dbms-dependency", "--executors", "2",
                "--updates", "30", "--rate", "1.5", "--seed", "7",
            ]
        )
        assert code == 0
        assert "achieved MVC level: strong" in capsys.readouterr().out

    def test_run_distributed(self, capsys):
        code = main(
            [
                "run", "--schema", "clustered", "--merges", "3",
                "--updates", "30", "--seed", "5",
            ]
        )
        assert code == 0
        assert "merge x3" in capsys.readouterr().out

    def test_run_with_filtering(self, capsys):
        code = main(
            ["run", "--schema", "star", "--filtering", "--updates", "30"]
        )
        assert code == 0

    def test_run_with_views_file(self, capsys, tmp_path):
        catalog = tmp_path / "views.cat"
        catalog.write_text(
            "# custom suite\n"
            "OnlyV1 = SELECT * FROM R JOIN S\n"
            "Totals = SELECT B, count(*) AS n FROM S GROUP BY B\n"
        )
        code = main(
            ["run", "--schema", "paper", "--views-file", str(catalog),
             "--updates", "20", "--seed", "11"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "views=2" in out

    def test_sweep_compares_variants(self, capsys):
        code = main(
            ["sweep", "--updates", "25", "--seed", "3",
             "--variants", "complete,strong"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out and "strong" in out
        assert "makespan" in out

    def test_sweep_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--variants", "psychic"])

    def test_run_unsafe_config_reports_failure(self, capsys):
        code = main(
            [
                "run", "--policy", "eager", "--executors", "4",
                "--updates", "60", "--rate", "4", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        # The eager policy on a parallel warehouse loses MVC; the CLI
        # must say so and exit non-zero.
        assert code == 1
        assert "FAILED" in out
