"""Every example script must run clean (guards against example rot)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must print their findings"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "bank_customer_inquiry.py",
        "painting_algorithm_traces.py",
        "distributed_merge.py",
        "retail_analytics.py",
    } <= names
