"""Crash-recovery properties: warm restart ≡ uninterrupted replay.

The load-bearing claim of ``repro.cache`` is that a maintenance plan
rebuilt from a content-addressed artifact is indistinguishable — delta
for delta, row for row — from one that never crashed.  Hypothesis
drives that claim over random SPJ and aggregate views, random delta
batches (inserts *and* deletes of live rows), and a random crash point,
for both plan engines:

* the **artifact level** round-trips the replica and the plan's
  auxiliary state through real store bytes
  (:func:`~repro.cache.artifacts.encode_child_state` → ``put`` →
  ``get`` → :func:`~repro.cache.artifacts.decode_child_state` →
  ``MaintenancePlan(..., preload=...)``) at a crash point mid-stream and
  demands bag-identical view deltas, view contents, and replicas after
  the remaining batches;
* the **system level** crashes a live view manager and merge process
  under the DES kernel with the cache enabled and demands the final
  warehouse views match an uncached, uncrashed run of the same
  workload, with MVC-complete intact.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.artifacts import decode_child_state, encode_child_state
from repro.cache.store import ArtifactStore, CacheConfig
from repro.faults.plan import CrashSpec, FaultPlan
from repro.relational.columnar import counts_to_rows, layout_of, rows_to_counts
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan
from repro.relational.predicates import Attr, Comparison, Const
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import (
    UpdateStreamGenerator,
    WorkloadSpec,
    post_stream,
)
from repro.workloads.schemas import paper_views_example1, paper_world

# ---------------------------------------------------------------------------
# random views over R(A, B) ⋈ S(B, C)
# ---------------------------------------------------------------------------

SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
ATTRS = {"R": ("A", "B"), "S": ("B", "C")}

R, S = BaseRelation("R"), BaseRelation("S")

small_int = st.integers(min_value=0, max_value=4)


def _spj_views():
    return st.one_of(
        st.just(Join(R, S)),
        st.sampled_from(
            [
                Project(("A", "C"), Join(R, S)),
                Project(("B",), Join(R, S)),
                Project(("A",), R),
            ]
        ),
        small_int.map(
            lambda c: Select(Comparison(Attr("B"), "<=", Const(c)), Join(R, S))
        ),
        small_int.map(
            lambda c: Select(Comparison(Attr("A"), ">", Const(c)), R)
        ),
    )


def _aggregate_views():
    return st.sampled_from(
        [
            Aggregate(
                ("B",),
                (
                    AggregateSpec("count", "n"),
                    AggregateSpec("sum", "total_a", "A"),
                ),
                R,
            ),
            Aggregate(
                ("B",),
                (
                    AggregateSpec("count", "n"),
                    AggregateSpec("sum", "total_c", "C"),
                ),
                Join(R, S),
            ),
            Aggregate((), (AggregateSpec("count", "n"),), Join(R, S)),
        ]
    )


views = st.one_of(_spj_views(), _aggregate_views())

# One op: insert a fresh random row, or delete some currently-live row
# (the index is taken modulo the live bag at execution time, so every
# generated delete is valid by construction).
ops = st.lists(
    st.tuples(
        st.sampled_from(("R", "S")),
        st.tuples(small_int, small_int),
        st.booleans(),  # is_delete
        st.integers(min_value=0, max_value=63),  # delete index
    ),
    max_size=24,
)


def _materialize_batches(op_stream, batch_count, initial):
    """Turn the op stream into valid per-batch deltas against ``initial``."""
    live = {name: dict(initial[name]) for name in SCHEMAS}
    batches = [{} for _ in range(batch_count)]
    total = len(op_stream)
    for i, (relation, values, is_delete, index) in enumerate(op_stream):
        row = Row(dict(zip(ATTRS[relation], values)))
        if is_delete:
            candidates = sorted(live[relation], key=repr)
            if not candidates:
                continue
            row = candidates[index % len(candidates)]
            delta = Delta.delete(row)
            live[relation][row] -= 1
            if live[relation][row] == 0:
                del live[relation][row]
        else:
            delta = Delta.insert(row)
            live[relation][row] = live[relation].get(row, 0) + 1
        # Contiguous chunks, not round-robin: a delete must land in the
        # same batch as — or a later batch than — the insert it undoes.
        batch = batches[i * batch_count // total]
        batch[relation] = batch.get(relation, Delta()).combined(delta)
    return [b for b in batches if b]


def _fresh_db(initial):
    db = Database()
    for name, schema in SCHEMAS.items():
        rows = [r for r, c in initial[name].items() for _ in range(c)]
        db.create_relation(name, schema, rows)
    return db


def _apply_view_delta(bag, delta):
    for row, count in delta.counts().items():
        bag[row] = bag.get(row, 0) + count
        if bag[row] == 0:
            del bag[row]


def _replay(expr, engine, initial, batches):
    """Uninterrupted reference run; returns (view bag, replica counts)."""
    db = _fresh_db(initial)
    plan = MaintenancePlan(expr, db, engine=engine)
    bag = {}
    for deltas in batches:
        view_delta = plan.propagate(deltas)
        db.apply_deltas(deltas)
        plan.advance()
        _apply_view_delta(bag, view_delta)
    replica = {
        name: dict(db.relation(name).counts_view()) for name in SCHEMAS
    }
    return bag, replica


def _crash_and_restore(expr, engine, initial, batches, crash_at, store):
    """Apply ``crash_at`` batches, round-trip state through the store as a
    real artifact, rebuild, and finish the stream on the restored plan."""
    db = _fresh_db(initial)
    plan = MaintenancePlan(expr, db, engine=engine)
    bag = {}
    for deltas in batches[:crash_at]:
        view_delta = plan.propagate(deltas)
        db.apply_deltas(deltas)
        plan.advance()
        _apply_view_delta(bag, view_delta)

    # -- crash: everything live is lost except the published artifact ----
    layouts = {name: layout_of(SCHEMAS[name].names) for name in SCHEMAS}
    replica_counts = {
        name: (
            layouts[name],
            rows_to_counts(layouts[name], db.relation(name).counts_view()),
        )
        for name in SCHEMAS
    }
    key, payload = encode_child_state(
        "V", str(expr), engine, replica_counts, plan.export_aux()
    )
    store.put(key, payload)
    del db, plan

    # -- restart: rebuild replica + plan from verified store bytes --------
    decoded = decode_child_state(store.get(key))
    assert decoded["engine"] == engine
    restored = Database()
    for name, (layout, counts) in decoded["replica"].items():
        decoded_bag = counts_to_rows(tuple(layout), counts)
        restored.create_relation(
            name,
            SCHEMAS[name],
            (row for row, c in decoded_bag.items() for _ in range(c)),
        )
    plan = MaintenancePlan(
        expr, restored, engine=engine, preload=decoded["aux"]
    )
    for deltas in batches[crash_at:]:
        view_delta = plan.propagate(deltas)
        restored.apply_deltas(deltas)
        plan.advance()
        _apply_view_delta(bag, view_delta)
    replica = {
        name: dict(restored.relation(name).counts_view()) for name in SCHEMAS
    }
    return bag, replica


@pytest.fixture(scope="module")
def module_store(tmp_path_factory):
    return ArtifactStore(tmp_path_factory.mktemp("prop-store"))


class TestArtifactLevelRecovery:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        expr=views,
        initial_ops=ops,
        stream=ops,
        batch_count=st.integers(min_value=1, max_value=5),
        crash_fraction=st.floats(min_value=0.0, max_value=1.0),
        engine=st.sampled_from(("columnar", "rows")),
    )
    def test_restore_is_bag_identical_to_replay(
        self,
        module_store,
        expr,
        initial_ops,
        stream,
        batch_count,
        crash_fraction,
        engine,
    ):
        initial = {name: {} for name in SCHEMAS}
        for relation, values, _d, _i in initial_ops:
            row = Row(dict(zip(ATTRS[relation], values)))
            initial[relation][row] = initial[relation].get(row, 0) + 1
        batches = _materialize_batches(stream, batch_count, initial)
        crash_at = round(crash_fraction * len(batches))

        expected_bag, expected_replica = _replay(
            expr, engine, initial, batches
        )
        restored_bag, restored_replica = _crash_and_restore(
            expr, engine, initial, batches, crash_at, module_store
        )
        assert restored_bag == expected_bag
        assert restored_replica == expected_replica


# ---------------------------------------------------------------------------
# system level: a live crash under the DES kernel
# ---------------------------------------------------------------------------


def _final_views(system):
    return {
        name: dict(system.warehouse.store.view(name).counts_view())
        for name in system.warehouse.store.view_names
    }


def _run_workload(seed, fault_plan=None, cache=False):
    world = paper_world()
    config = SystemConfig(
        manager_kind="complete",
        seed=seed,
        fault_plan=fault_plan,
        cache=CacheConfig() if cache else None,
    )
    system = WarehouseSystem(world, paper_views_example1(), config)
    spec = WorkloadSpec(updates=12, rate=2.0, seed=seed, mix=(0.7, 0.15, 0.15))
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    try:
        system.run()
        report = system.check_mvc("complete")
        return _final_views(system), report
    finally:
        system.close()


class TestSystemLevelRecovery:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        vm_crash=st.floats(min_value=1.0, max_value=7.0),
        merge_crash=st.floats(min_value=1.0, max_value=7.0),
    )
    def test_cached_crash_run_matches_pristine_run(
        self, seed, vm_crash, merge_crash
    ):
        plan = FaultPlan(
            seed=seed,
            crashes=(
                CrashSpec("vm:V1", at=vm_crash, restart_after=1.5),
                CrashSpec("merge", at=merge_crash, restart_after=2.0),
            ),
        )
        crashed_views, crashed_report = _run_workload(
            seed, fault_plan=plan, cache=True
        )
        pristine_views, pristine_report = _run_workload(seed)
        assert crashed_report, crashed_report.reason
        assert pristine_report, pristine_report.reason
        assert crashed_views == pristine_views
