"""Cache counters in the metrics registry: one set of numbers everywhere.

``repro cache stats`` reads the store's attribute counters; the metric
exporters read the registry.  ``bind_registry`` keeps the two in exact
agreement — every store-level increment mirrors into a
``cache_store_<stat>`` counter, and late binding catches up.
"""

from __future__ import annotations

import pytest

from repro.cache.keys import artifact_key
from repro.cache.store import ArtifactStore, CacheConfig
from repro.errors import CacheIntegrityError, CacheMiss
from repro.obs.registry import MetricsRegistry
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import (
    UpdateStreamGenerator,
    WorkloadSpec,
    post_stream,
)
from repro.workloads.schemas import paper_views_example2, paper_world

STATS = ("puts", "hits", "misses", "integrity_failures", "evictions")


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def registry_stats(registry: MetricsRegistry, **labels) -> dict[str, float]:
    return {
        stat: registry.value(f"cache_store_{stat}", **labels)
        for stat in STATS
    }


def store_stats(store: ArtifactStore) -> dict[str, float]:
    return {stat: float(getattr(store, stat)) for stat in STATS}


class TestBindRegistry:
    def test_increments_mirror(self, store):
        registry = MetricsRegistry()
        store.bind_registry(registry, store="system")
        key = artifact_key("test", {"name": "mirrored"})
        store.put(key, b"payload")
        store.get(key)
        with pytest.raises(CacheMiss):
            store.get(artifact_key("test", {"name": "absent"}))
        assert registry_stats(registry, store="system") == store_stats(store)

    def test_integrity_failure_mirrors(self, store):
        registry = MetricsRegistry()
        store.bind_registry(registry)
        key = artifact_key("test", {"name": "corrupt"})
        store.put(key, b"payload")
        path = store._object_path(key)
        path.write_bytes(path.read_bytes()[:-3] + b"zzz")
        with pytest.raises(CacheIntegrityError):
            store.get(key)
        assert registry.value("cache_store_integrity_failures") == 1.0

    def test_evictions_mirror(self, store):
        registry = MetricsRegistry()
        store.bind_registry(registry)
        for index in range(4):
            store.put(artifact_key("test", {"n": index}), b"x" * 64)
        store.gc(max_artifacts=1)
        assert store.evictions == 3
        assert registry.value("cache_store_evictions") == 3.0

    def test_late_bind_catches_up(self, store):
        key = artifact_key("test", {"name": "early"})
        store.put(key, b"payload")
        store.get(key)
        registry = MetricsRegistry()
        store.bind_registry(registry)
        assert registry.value("cache_store_puts") == 1.0
        assert registry.value("cache_store_hits") == 1.0
        # and stays exact afterwards
        store.get(key)
        assert registry.value("cache_store_hits") == 2.0

    def test_rebind_does_not_double_count(self, store):
        registry = MetricsRegistry()
        store.bind_registry(registry)
        store.put(artifact_key("test", {"name": "once"}), b"payload")
        store.bind_registry(registry)
        assert registry.value("cache_store_puts") == 1.0

    def test_unbound_store_keeps_no_registry(self, store):
        key = artifact_key("test", {"name": "plain"})
        store.put(key, b"payload")  # must not raise
        assert store.puts == 1


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def cached_system(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("cache-metrics")
        world = paper_world()
        spec = WorkloadSpec(updates=25, rate=4.0, seed=21,
                            mix=(0.6, 0.2, 0.2))
        system = WarehouseSystem(
            world, paper_views_example2(),
            SystemConfig(seed=21, cache=CacheConfig(root=str(root))),
        )
        post_stream(system,
                    UpdateStreamGenerator(world, spec).transactions())
        system.run()
        return system

    def test_store_is_bound_at_build(self, cached_system):
        registry = cached_system.sim.metrics
        assert (registry_stats(registry, store="system")
                == store_stats(cached_system.cache_store))
        assert cached_system.cache_store.puts > 0

    def test_server_counters_track_attributes(self, cached_system):
        registry = cached_system.sim.metrics
        assert (registry.value("cache_server_publishes", process="cache")
                == cached_system.cache_server.publishes_accepted)
        served = sum(
            metric.value
            for metric in registry.family("cache_server_requests")
        )
        assert served == cached_system.cache_server.requests_served


class TestServerCounters:
    def test_hit_miss_publish_results_labelled(self, tmp_path):
        from repro.cache.server import (
            ArtifactPublish,
            ArtifactRequest,
            CacheServer,
        )
        from repro.sim.kernel import Simulator
        from repro.sim.process import Process

        class Client(Process):
            def handle(self, message, sender):
                pass

        sim = Simulator()
        server = CacheServer(sim, ArtifactStore(tmp_path / "served"))
        client = Client(sim, "client")
        client.connect(server, 1.0)
        server.connect(client, 1.0)
        key = artifact_key("test", {"name": "served"})
        client.send(server, ArtifactPublish(key, b"payload"))
        client.send(server, ArtifactRequest(1, key))
        client.send(server, ArtifactRequest(2, artifact_key("test",
                                                            {"name": "no"})))
        sim.run()
        registry = sim.metrics
        assert registry.value("cache_server_publishes",
                              process="cache") == 1.0
        assert registry.value("cache_server_requests", process="cache",
                              result="hit") == 1.0
        assert registry.value("cache_server_requests", process="cache",
                              result="miss") == 1.0
