"""The cache server actor: artifacts over ordinary channels.

A client process publishes and fetches artifacts through
:class:`~repro.cache.server.CacheServer` exactly as a remote restorer
would — over :class:`~repro.sim.network.Channel` objects under the DES
kernel — and the builder wires a server into every cache-enabled system.
"""

import pytest

from repro.cache.keys import artifact_key
from repro.cache.server import (
    ArtifactPublish,
    ArtifactRequest,
    ArtifactResponse,
    CacheServer,
    CacheStatsQuery,
    CacheStatsResponse,
)
from repro.cache.store import ArtifactStore, CacheConfig
from repro.errors import CacheError
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_views_example1, paper_world


class Client(Process):
    def __init__(self, sim, name="client"):
        super().__init__(sim, name)
        self.responses = []

    def handle(self, message, sender):
        self.responses.append(message)


@pytest.fixture
def wired(tmp_path):
    sim = Simulator()
    store = ArtifactStore(tmp_path)
    server = CacheServer(sim, store, service_cost=0.5)
    client = Client(sim)
    client.connect(server, 1.0)
    server.connect(client, 1.0)
    return sim, store, server, client


KEY = artifact_key("test", {"name": "served"})


class TestProtocol:
    def test_publish_then_fetch_round_trip(self, wired):
        sim, store, server, client = wired
        client.send(server, ArtifactPublish(KEY, b"payload", ref="ns/view/V1"))
        client.send(server, ArtifactRequest(1, KEY))
        sim.run()
        assert server.publishes_accepted == 1
        assert server.requests_served == 1
        assert store.ref("ns/view/V1") == KEY
        (response,) = client.responses
        assert response == ArtifactResponse(1, KEY, b"payload", None)

    def test_miss_answered_not_raised(self, wired):
        sim, _store, server, client = wired
        client.send(server, ArtifactRequest(7, KEY))
        sim.run()
        (response,) = client.responses
        assert response.payload is None
        assert response.error == "miss"
        assert response.request_id == 7

    def test_corrupt_artifact_served_as_integrity_miss(self, wired):
        sim, store, server, client = wired
        store.put(KEY, b"payload")
        path = store._object_path(KEY)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        client.send(server, ArtifactRequest(2, KEY))
        sim.run()
        (response,) = client.responses
        assert response.payload is None
        assert response.error == "integrity"

    def test_stats_query(self, wired):
        sim, _store, server, client = wired
        client.send(server, ArtifactPublish(KEY, b"payload"))
        client.send(server, CacheStatsQuery(3))
        sim.run()
        (response,) = client.responses
        assert isinstance(response, CacheStatsResponse)
        assert response.request_id == 3
        assert response.stats["artifacts"] == 1

    def test_unknown_message_rejected(self, wired):
        sim, _store, server, client = wired
        client.send(server, "not-a-cache-message")
        with pytest.raises(CacheError, match="cannot handle"):
            sim.run()

    def test_service_cost_delays_the_reply(self, wired):
        sim, _store, server, client = wired
        client.send(server, ArtifactRequest(1, KEY))
        sim.run()
        # 1.0 out + 0.5 service + 1.0 back
        assert sim.now >= 2.5


class TestBuilderWiring:
    def test_cache_system_gets_a_server(self):
        system = WarehouseSystem(
            paper_world(),
            paper_views_example1(),
            SystemConfig(manager_kind="complete", cache=CacheConfig()),
        )
        try:
            assert system.cache_server is not None
            assert system.cache_server.store is system.cache_store
            # Reachable from every view manager and merge process.
            for manager in system.view_managers.values():
                assert "cache" in manager.peers()
            for merge in system.merge_processes:
                assert "cache" in merge.peers()
        finally:
            system.close()

    def test_server_opt_out(self):
        system = WarehouseSystem(
            paper_world(),
            paper_views_example1(),
            SystemConfig(
                manager_kind="complete", cache=CacheConfig(server=False)
            ),
        )
        try:
            assert system.cache_server is None
            assert system.cache_store is not None
        finally:
            system.close()

    def test_uncached_system_has_neither(self):
        system = WarehouseSystem(
            paper_world(),
            paper_views_example1(),
            SystemConfig(manager_kind="complete"),
        )
        try:
            assert system.cache_server is None
            assert system.cache_store is None
        finally:
            system.close()
