"""The artifact store: durability primitives the warm-restart path trusts.

Every guarantee the recovery machinery leans on is pinned here at the
store level: writes are atomic (a reader never sees a torn artifact),
reads are integrity-verified (corruption raises, it never silently
returns garbage), GC respects pins, and artifact keys are pure functions
of their material — stable across processes and hash seeds.
"""

import pickle
import subprocess
import sys
import threading

import pytest

from repro.cache.keys import artifact_key, canon_bytes, relation_digest
from repro.cache.store import ArtifactStore, CacheConfig
from repro.errors import CacheError, CacheIntegrityError, CacheMiss


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


KEY = artifact_key("test", {"name": "round-trip"})


class TestRoundTrip:
    def test_put_get_round_trip(self, store):
        payload = pickle.dumps({"rows": [(1, 2), (3, 4)], "count": 2})
        store.put(KEY, payload)
        assert store.get(KEY) == payload
        assert store.has(KEY)
        assert store.keys() == [KEY]

    def test_get_missing_raises_cache_miss(self, store):
        with pytest.raises(CacheMiss):
            store.get(artifact_key("test", {"name": "never-written"}))
        assert store.misses == 1

    def test_put_overwrites_idempotently(self, store):
        store.put(KEY, b"first")
        store.put(KEY, b"second")
        assert store.get(KEY) == b"second"
        assert store.stats()["artifacts"] == 1

    def test_non_bytes_payload_rejected(self, store):
        with pytest.raises(CacheError, match="bytes"):
            store.put(KEY, {"not": "bytes"})

    def test_malformed_keys_rejected(self, store):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(CacheError, match="malformed"):
                store.put(bad, b"payload")

    def test_refs_point_at_keys(self, store):
        store.put(KEY, b"payload")
        store.set_ref("default/view/V1", KEY)
        assert store.ref("default/view/V1") == KEY
        assert store.ref("default/view/V9") is None
        assert store.refs() == {"default/view/V1": KEY}


class TestCorruptionDetection:
    def _corrupt(self, store, key, offset=-1):
        path = store._object_path(key)
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF  # flip one byte
        path.write_bytes(bytes(raw))

    def test_flipped_payload_byte_raises(self, store):
        store.put(KEY, pickle.dumps(list(range(100))))
        self._corrupt(store, KEY)
        with pytest.raises(CacheIntegrityError, match="digest"):
            store.get(KEY)
        assert store.integrity_failures == 1

    def test_flipped_header_byte_raises(self, store):
        store.put(KEY, b"payload-bytes")
        self._corrupt(store, KEY, offset=0)
        with pytest.raises(CacheIntegrityError):
            store.get(KEY)

    def test_truncated_artifact_raises(self, store):
        store.put(KEY, b"payload-bytes")
        path = store._object_path(KEY)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.raises(CacheIntegrityError):
            store.get(KEY)

    def test_intact_sibling_unaffected(self, store):
        other = artifact_key("test", {"name": "sibling"})
        store.put(KEY, b"doomed")
        store.put(other, b"fine")
        self._corrupt(store, KEY)
        with pytest.raises(CacheIntegrityError):
            store.get(KEY)
        assert store.get(other) == b"fine"


class TestConcurrentWriters:
    def test_racing_writers_never_produce_a_torn_artifact(self, store):
        """N threads hammer the same key; every read sees one writer's
        complete payload, never an interleaving."""
        payloads = [bytes([i]) * 4096 for i in range(8)]
        errors = []

        def write(payload):
            try:
                for _ in range(20):
                    store.put(KEY, payload)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(p,)) for p in payloads
        ]
        for t in threads:
            t.start()
        seen = set()
        for _ in range(50):
            try:
                seen.add(store.get(KEY))
            except CacheMiss:
                pass
        for t in threads:
            t.join()
        assert errors == []
        assert seen <= set(payloads)  # only complete payloads, ever
        assert store.get(KEY) in payloads

    def test_distinct_keys_from_many_threads_all_land(self, store):
        keys = [artifact_key("test", {"writer": i}) for i in range(16)]

        def write(key, i):
            store.put(key, b"%d" % i)

        threads = [
            threading.Thread(target=write, args=(k, i))
            for i, k in enumerate(keys)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.keys() == sorted(keys)
        for i, key in enumerate(keys):
            assert store.get(key) == b"%d" % i


class TestGarbageCollection:
    def test_gc_is_noop_without_caps(self, store):
        store.put(KEY, b"payload")
        report = store.gc()
        assert report["evicted"] == 0
        assert store.has(KEY)

    def test_lru_eviction_keeps_recently_read(self, store, tmp_path):
        import os

        keys = [artifact_key("test", {"n": i}) for i in range(5)]
        for age, key in enumerate(keys):
            store.put(key, b"x" * 10)
            # Deterministic mtimes: keys[0] oldest ... keys[4] newest.
            os.utime(store._object_path(key), (1000 + age, 1000 + age))
        report = store.gc(max_artifacts=2)
        assert report["evicted"] == 3
        assert store.has(keys[3]) and store.has(keys[4])
        assert not any(store.has(k) for k in keys[:3])

    def test_gc_never_evicts_pinned(self, store):
        import os

        pinned_key = artifact_key("test", {"pinned": True})
        store.put(pinned_key, b"precious", pin=True)
        os.utime(store._object_path(pinned_key), (500, 500))  # oldest
        victims = [artifact_key("test", {"n": i}) for i in range(4)]
        for age, key in enumerate(victims):
            store.put(key, b"x")
            os.utime(store._object_path(key), (1000 + age, 1000 + age))
        report = store.gc(max_artifacts=1)
        assert store.has(pinned_key)
        assert store.get(pinned_key) == b"precious"
        assert report["evicted"] >= 3
        store.unpin(pinned_key)
        store.gc(max_artifacts=0)
        assert not store.has(pinned_key)

    def test_configured_caps_are_the_default(self, tmp_path):
        store = ArtifactStore(tmp_path, max_artifacts=2)
        for i in range(5):
            store.put(artifact_key("test", {"n": i}), b"x")
        report = store.gc()
        assert report["artifacts"] == 2


class TestKeyStability:
    """Keys must be pure functions of their material — same material,
    same key, in any process, under any PYTHONHASHSEED."""

    MATERIAL = {
        "view": "V1",
        "expr": "project(join(R, S on B), A, C)",
        "vv": {"R": "aa" * 16, "S": "bb" * 16},
        "engine": "columnar",
        "weights": (1, 2.5, None, True),
    }

    def _subprocess_key(self, hash_seed):
        script = (
            "from repro.cache.keys import artifact_key\n"
            f"print(artifact_key('test', {self.MATERIAL!r}))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(hash_seed)},
            cwd="/root/repo",
        )
        return out.stdout.strip()

    def test_key_stable_across_processes_and_hash_seeds(self):
        local = artifact_key("test", self.MATERIAL)
        assert self._subprocess_key(0) == local
        assert self._subprocess_key(424242) == local

    def test_key_ordering_insensitive_to_dict_order(self):
        a = artifact_key("test", {"x": 1, "y": 2})
        b = artifact_key("test", {"y": 2, "x": 1})
        assert a == b

    def test_kind_partitions_the_key_space(self):
        assert artifact_key("seed", {"x": 1}) != artifact_key("ckpt", {"x": 1})

    def test_canon_rejects_unencodable_types(self):
        with pytest.raises(CacheError):
            canon_bytes({"bad": object()})

    def test_relation_digest_is_content_addressed(self):
        layout = ("A", "B")
        assert relation_digest(layout, {(1, 2): 1, (3, 4): 2}) == (
            relation_digest(layout, {(3, 4): 2, (1, 2): 1})
        )
        assert relation_digest(layout, {(1, 2): 1}) != (
            relation_digest(layout, {(1, 2): 2})
        )


class TestCacheConfig:
    def test_validation(self):
        with pytest.raises(CacheError):
            CacheConfig(max_bytes=0)
        with pytest.raises(CacheError):
            CacheConfig(max_artifacts=-1)
        with pytest.raises(CacheError):
            CacheConfig(namespace="")

    def test_defaults(self):
        cfg = CacheConfig()
        assert cfg.root is None
        assert cfg.server is True
        assert cfg.stale_refs is False
