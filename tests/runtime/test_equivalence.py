"""Runtime equivalence: parallel runs end where the DES run ends.

The wall-clock runtimes may interleave work differently from the DES
kernel (that's the point), but per-source FIFO and per-process
serialization guarantee every backend drives the base relations through
the same final state — so the final warehouse stores must be
bag-identical, and every real-runtime history must pass the conformance
oracle at the level the configuration advertises.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.conformance.oracle import check_real_run
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import (
    clustered_views,
    clustered_world,
    paper_views_example2,
    paper_world,
)


def final_stores(system: WarehouseSystem) -> dict[str, list[tuple]]:
    state = system.store.history[-1]
    return {
        d.name: sorted(tuple(r.values()) for r in state.view(d.name))
        for d in system.definitions
    }


def run_once(
    runtime: str,
    updates: int,
    seed: int,
    manager: str = "complete",
    merges: int = 1,
    workers: int | None = None,
    clustered: bool = False,
):
    if clustered:
        world, views = clustered_world(3), clustered_views(3)
    else:
        world, views = paper_world(), paper_views_example2()
    config = SystemConfig(
        manager_kind=manager,
        merge_groups=merges,
        merge_router="hash" if merges > 1 else "coalesce",
        runtime=runtime,
        workers=workers,
        seed=seed,
    )
    system = WarehouseSystem(world, views, config)
    spec = WorkloadSpec(
        updates=updates, rate=2.0, seed=seed, mix=(0.6, 0.2, 0.2),
        arrivals="poisson",
    )
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()
    report = check_real_run(system)
    stores = final_stores(system)
    system.close()
    return report, stores


class TestThreadsEquivalence:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        updates=st.integers(min_value=5, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
        manager=st.sampled_from(["complete", "strong", "convergent"]),
        workers=st.sampled_from([1, 2, 4]),
    )
    def test_random_workloads_bag_identical(self, updates, seed, manager, workers):
        des_report, des_stores = run_once("des", updates, seed, manager)
        par_report, par_stores = run_once(
            "threads", updates, seed, manager, workers=workers
        )
        assert par_stores == des_stores
        assert des_report.ok, [str(v) for v in des_report.violations]
        assert par_report.ok, [str(v) for v in par_report.violations]
        assert par_report.runtime == "threads"
        assert par_report.digest  # the history reduced to a pinning digest

    def test_sharded_threads_matches_des(self):
        des_report, des_stores = run_once(
            "des", 40, 11, merges=3, clustered=True
        )
        par_report, par_stores = run_once(
            "threads", 40, 11, merges=3, workers=3, clustered=True
        )
        assert par_stores == des_stores
        # Per-shard MVC oracle: check_real_run includes shard: scopes for
        # multi-merge systems; an empty violations tuple covers them.
        assert des_report.ok and par_report.ok

    def test_complete_n_flush_survives_threads(self):
        des_report, des_stores = run_once("des", 24, 5, manager="complete-n")
        par_report, par_stores = run_once(
            "threads", 24, 5, manager="complete-n", workers=2
        )
        assert par_stores == des_stores
        assert des_report.ok and par_report.ok


class TestProcsEquivalence:
    def test_procs_matches_des(self):
        des_report, des_stores = run_once("des", 40, 7)
        pro_report, pro_stores = run_once("procs", 40, 7, workers=2)
        assert pro_stores == des_stores
        assert pro_report.ok, [str(v) for v in pro_report.violations]
        assert pro_report.runtime == "procs"

    def test_procs_sharded_matches_des(self):
        des_report, des_stores = run_once(
            "des", 30, 13, merges=3, clustered=True
        )
        pro_report, pro_stores = run_once(
            "procs", 30, 13, merges=3, workers=3, clustered=True
        )
        assert pro_stores == des_stores
        assert des_report.ok and pro_report.ok

    def test_procs_reruns_back_to_back(self):
        # Fleet forking must stay safe across sequential systems (workers
        # joined between runs; fork happens in a thread-free window).
        first = run_once("procs", 10, 1, workers=2)
        second = run_once("procs", 10, 1, workers=2)
        assert first[1] == second[1]


class TestDesDefaultUnchanged:
    def test_des_remains_bit_for_bit(self):
        # Same config + seed on the DES backend: identical digests.  The
        # golden digests in tests/conformance/test_determinism.py pin the
        # absolute values; this pins that the runtime split kept the DES
        # path on the exact historical code path.
        a, _ = run_once("des", 25, 42)
        b, _ = run_once("des", 25, 42)
        assert a.digest == b.digest
        assert a.runtime == "des"
