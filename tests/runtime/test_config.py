"""SystemConfig validation for the runtime knobs."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.system.config import RUNTIMES, SystemConfig


class TestRuntimeValidation:
    def test_runtimes_tuple(self):
        assert RUNTIMES == ("des", "threads", "procs")

    def test_default_is_des(self):
        assert SystemConfig().runtime == "des"

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ReproError, match="runtime"):
            SystemConfig(runtime="gpu")

    def test_workers_under_des_rejected(self):
        with pytest.raises(ReproError, match="workers"):
            SystemConfig(workers=4)

    def test_workers_must_be_positive(self):
        with pytest.raises(ReproError, match="workers"):
            SystemConfig(runtime="threads", workers=0)

    def test_mailbox_capacity_must_be_positive(self):
        with pytest.raises(ReproError, match="mailbox_capacity"):
            SystemConfig(runtime="threads", mailbox_capacity=0)

    def test_runtime_timeout_must_be_positive(self):
        with pytest.raises(ReproError, match="runtime_timeout"):
            SystemConfig(runtime="threads", runtime_timeout=0.0)

    def test_parallel_rejects_fault_plan(self):
        with pytest.raises(ReproError, match="fault"):
            SystemConfig(runtime="threads", fault_plan=FaultPlan())

    def test_parallel_rejects_custom_scheduler(self):
        from repro.sim.kernel import Scheduler

        with pytest.raises(ReproError, match="scheduler"):
            SystemConfig(runtime="threads", scheduler=Scheduler())

    def test_parallel_rejects_periodic_managers(self):
        with pytest.raises(ReproError, match="periodic"):
            SystemConfig(runtime="threads", manager_kind="periodic")

    def test_parallel_rejects_periodic_in_overrides(self):
        with pytest.raises(ReproError, match="periodic"):
            SystemConfig(
                runtime="threads", manager_kinds={"V1": "periodic"}
            )

    def test_threads_accepts_parallel_knobs(self):
        config = SystemConfig(
            runtime="threads", workers=4, mailbox_capacity=64,
            runtime_timeout=30.0,
        )
        assert config.workers == 4
