"""Unit tests for the parallel kernel: mailboxes, affinity, quiescence."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import SimulationError
from repro.runtime.parallel import Mailbox, ParallelKernel


class Actor:
    """A minimal stand-in for a Process: state mutated only via events."""

    def __init__(self) -> None:
        self.seen: list[int] = []
        self.counter = 0

    def record(self, value: int) -> None:
        self.seen.append(value)
        # A deliberately non-atomic read-modify-write: if two events of
        # this actor ever ran concurrently, increments would be lost.
        current = self.counter
        time.sleep(0.0005)
        self.counter = current + 1


class TestMailbox:
    def test_fifo(self):
        box = Mailbox()
        for i in range(5):
            box.put(i)
        assert [box.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_bounded_put_times_out(self):
        box = Mailbox(capacity=1, name="tiny")
        box.put("a")
        with pytest.raises(SimulationError, match="tiny"):
            box.put("b", timeout=0.05)

    def test_bounded_put_unblocks_when_drained(self):
        box = Mailbox(capacity=1)
        box.put("a")
        drained = []

        def drain():
            time.sleep(0.05)
            drained.append(box.get())

        thread = threading.Thread(target=drain)
        thread.start()
        box.put("b", timeout=5.0)  # must unblock once the getter runs
        thread.join()
        assert drained == ["a"]
        assert box.get() == "b"

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Mailbox(capacity=0)


class TestParallelKernel:
    def test_rejects_virtual_time_bounds(self):
        kernel = ParallelKernel(workers=1)
        with pytest.raises(SimulationError):
            kernel.run(until=10.0)
        with pytest.raises(SimulationError):
            kernel.run(max_events=5)
        with pytest.raises(SimulationError):
            kernel.step()

    def test_runs_to_quiescence_and_counts(self):
        kernel = ParallelKernel(workers=2)
        actor = Actor()
        for i in range(10):
            kernel.schedule(0.0, actor.record, i)
        executed = kernel.run()
        assert executed == 10
        assert kernel.events_executed == 10
        assert kernel.pending_events == 0
        assert actor.seen == list(range(10))

    def test_staged_events_inject_in_time_order(self):
        kernel = ParallelKernel(workers=1)
        actor = Actor()
        # Stage out of time order; injection must sort by (time, seq).
        kernel.schedule_at(3.0, actor.record, 3)
        kernel.schedule_at(1.0, actor.record, 1)
        kernel.schedule_at(2.0, actor.record, 2)
        kernel.run()
        assert actor.seen == [1, 2, 3]

    def test_per_actor_serialization_under_many_workers(self):
        kernel = ParallelKernel(workers=4)
        actors = [Actor() for _ in range(3)]
        per_actor = 40
        for i in range(per_actor):
            for actor in actors:
                kernel.schedule(0.0, actor.record, i)
        kernel.run()
        for actor in actors:
            # FIFO per actor AND no lost increments: both fail if two of
            # one actor's events ever overlapped.
            assert actor.seen == list(range(per_actor))
            assert actor.counter == per_actor

    def test_events_scheduled_during_run_execute(self):
        kernel = ParallelKernel(workers=2)
        actor = Actor()

        def fan_out():
            for i in range(5):
                kernel.schedule(0.0, actor.record, i)

        kernel.schedule(0.0, fan_out)
        executed = kernel.run()
        assert executed == 6
        assert sorted(actor.seen) == list(range(5))

    def test_worker_exception_propagates(self):
        kernel = ParallelKernel(workers=2)

        def boom():
            raise ValueError("kaboom")

        kernel.schedule(0.0, boom)
        with pytest.raises(ValueError, match="kaboom"):
            kernel.run()

    def test_multiple_runs_accumulate(self):
        kernel = ParallelKernel(workers=2)
        actor = Actor()
        kernel.schedule(0.0, actor.record, 0)
        assert kernel.run() == 1
        kernel.schedule(0.0, actor.record, 1)
        assert kernel.run() == 1
        assert kernel.events_executed == 2
        assert actor.seen == [0, 1]

    def test_negative_delay_rejected(self):
        kernel = ParallelKernel(workers=1)
        with pytest.raises(SimulationError):
            kernel.schedule(-1.0, lambda: None)

    def test_wall_clock_advances(self):
        kernel = ParallelKernel(workers=1)
        before = kernel.now
        time.sleep(0.01)
        assert kernel.now > before

    def test_channel_affinity_routes_to_destination(self):
        kernel = ParallelKernel(workers=4)

        class FakeChannel:
            def __init__(self, destination):
                self.destination = destination

            def deliver(self, value):
                self.destination.record(value)

        actor = Actor()
        channels = [FakeChannel(actor) for _ in range(3)]
        # Three channels into one actor: all their deliveries must land
        # on the actor's single home worker (no lost increments).
        for i in range(30):
            kernel.schedule(0.0, channels[i % 3].deliver, i)
        kernel.run()
        assert actor.counter == 30
