"""Cross-process telemetry on the procs runtime.

The acceptance bar for the collector: a ``procs`` run's parent registry
must show the forked compute servers' work, origin-labelled per shard,
and the per-view row totals must reconcile with a DES run of the same
seeded workload (insert-only, so totals are batch-boundary-invariant).
"""

from __future__ import annotations

import pytest

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import (
    UpdateStreamGenerator,
    WorkloadSpec,
    post_stream,
)
from repro.workloads.schemas import paper_views_example2, paper_world

UPDATES = 50
SEED = 33


def run_workload(config: SystemConfig) -> WarehouseSystem:
    world = paper_world()
    spec = WorkloadSpec(updates=UPDATES, rate=8.0, seed=SEED,
                        mix=(1.0, 0.0, 0.0))
    system = WarehouseSystem(world, paper_views_example2(), config)
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()
    return system


def child_total(system: WarehouseSystem, name: str, view: str) -> float:
    return sum(
        metric.value
        for metric in system.sim.metrics.family(name)
        if dict(metric.labels).get("view") == view
    )


@pytest.fixture(scope="module")
def procs_system():
    system = run_workload(
        SystemConfig(seed=SEED, runtime="procs", workers=2)
    )
    yield system
    system.close()


@pytest.fixture(scope="module")
def des_system():
    return run_workload(SystemConfig(seed=SEED))


class TestCollector:
    def test_child_metrics_are_origin_labelled(self, procs_system):
        requests = procs_system.sim.metrics.family("proc_compute_requests")
        assert requests, "no child metrics reached the parent registry"
        origins = {dict(m.labels)["origin"] for m in requests}
        assert origins and all(":" in origin for origin in origins)
        assert all(m.origin == dict(m.labels)["origin"] for m in requests)

    def test_child_histograms_are_bounded(self, procs_system):
        timers = procs_system.sim.metrics.family("proc_compute_seconds")
        assert timers
        for histogram in timers:
            assert histogram.bound is not None
            assert histogram.count > 0

    def test_child_trace_events_merged(self, procs_system):
        events = procs_system.sim.trace.of_kind("proc_compute")
        assert events
        assert all(e.process.startswith("compute:") for e in events)
        assert all("origin" in e.detail for e in events)
        total_requests = sum(
            m.value
            for m in procs_system.sim.metrics.family("proc_compute_requests")
        )
        assert len(events) == total_requests

    def test_collect_is_idempotent_after_run(self, procs_system):
        before = {
            m.key: m.value
            for m in procs_system.sim.metrics.family("proc_compute_requests")
        }
        procs_system.runtime.collect(procs_system)
        after = {
            m.key: m.value
            for m in procs_system.sim.metrics.family("proc_compute_requests")
        }
        assert before == after


class TestReconciliation:
    def test_rows_reconcile_with_des(self, procs_system, des_system):
        """child rows_out == procs parent rows == DES rows, per view."""
        for view in des_system.view_managers:
            des_rows = des_system.sim.metrics.value(
                "vm_compute_rows", view=view
            )
            parent_rows = procs_system.sim.metrics.value(
                "vm_compute_rows", view=view
            )
            shipped = child_total(procs_system, "proc_compute_rows_out", view)
            assert shipped == parent_rows == des_rows
            assert des_rows > 0

    def test_requests_match_parent_batches(self, procs_system):
        # insert-only: every batch carries a non-empty delta, so every
        # parent-side compute round-trips the pipe exactly once
        for view in procs_system.view_managers:
            batches = procs_system.sim.metrics.value(
                "vm_compute_batches", view=view
            )
            requests = child_total(
                procs_system, "proc_compute_requests", view
            )
            assert requests == batches > 0

    def test_warehouse_state_matches_des(self, procs_system, des_system):
        assert (procs_system.warehouse.commits
                == des_system.warehouse.commits)


class TestKnobs:
    def test_collect_telemetry_off_keeps_registry_clean(self):
        system = run_workload(
            SystemConfig(seed=SEED, runtime="procs", workers=2,
                         collect_telemetry=False)
        )
        try:
            assert not system.sim.metrics.family("proc_compute_requests")
            assert not system.sim.trace.of_kind("proc_compute")
            # the run itself still happened
            assert system.warehouse.commits > 0
        finally:
            system.close()

    def test_profiled_procs_run_ships_node_timings(self):
        system = run_workload(
            SystemConfig(seed=SEED, runtime="procs", workers=2,
                         profile_plans=True)
        )
        try:
            calls = system.sim.metrics.family("plan_node_calls")
            assert calls
            # child-side nodes carry the shard origin label; the plans
            # run remotely, so at least one must have crossed the pipe
            assert any("origin" in dict(m.labels) for m in calls)
        finally:
            system.close()
