"""Shared guards for the runtime tests.

``pytest-timeout`` is not vendored in this environment, so the
hung-worker guard the multiprocess tests need is an autouse SIGALRM
fixture: any test in this directory that wedges (a deadlocked mailbox, a
hung compute server) is killed after ``HARD_TIMEOUT_S`` wall seconds
instead of hanging the suite.  CI layers a job-level ``timeout-minutes``
on top.
"""

from __future__ import annotations

import signal

import pytest

HARD_TIMEOUT_S = 120


@pytest.fixture(autouse=True)
def hard_timeout():
    """Fail the test with TimeoutError if it runs longer than the guard."""

    def _expired(signum, frame):
        raise TimeoutError(
            f"runtime test exceeded the {HARD_TIMEOUT_S}s hung-worker guard"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(HARD_TIMEOUT_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
