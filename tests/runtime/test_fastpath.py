"""The kernel hot-loop fast path must be invisible except in speed.

Laneless events under the *exact* default :class:`Scheduler` skip the
``adjust()`` call and the lane-clamp bookkeeping.  Any Scheduler subclass
— even a trivial one — must take the slow path, because subclasses may
carry per-event state.  Either way the execution order is identical.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator
from repro.sim.scheduler import Scheduler


class TrivialScheduler(Scheduler):
    """Behaviourally identical to the default, but a distinct type."""


def drive(sim: Simulator) -> list[tuple[str, float]]:
    log: list[tuple[str, float]] = []

    def tick(tag: str) -> None:
        log.append((tag, sim.now))
        if tag == "a" and sim.now < 3.0:
            sim.schedule(1.0, tick, "a")

    sim.schedule(0.0, tick, "a")
    sim.schedule(0.5, tick, "b")
    sim.schedule_at(2.0, tick, "c", lane="wire")
    sim.schedule_at(2.0, tick, "d", lane="wire")
    sim.schedule_at(2.0, tick, "e")  # same instant, laneless
    sim.run()
    return log


class TestFastPathGate:
    def test_default_scheduler_takes_fast_path(self):
        assert Simulator()._default_scheduler is True

    def test_subclass_takes_slow_path(self):
        assert Simulator(scheduler=TrivialScheduler())._default_scheduler is False


class TestFastPathEquivalence:
    def test_identical_execution_order(self):
        fast = drive(Simulator(seed=7))
        slow = drive(Simulator(seed=7, scheduler=TrivialScheduler()))
        assert fast == slow
        # Same-instant ties resolve by insertion order on both paths.
        tail = [tag for tag, when in fast if when == 2.0]
        assert tail == ["c", "d", "e", "a"]

    def test_lane_events_still_clamped_on_fast_kernel(self):
        # Lanes bypass the fast path even under the default scheduler:
        # the FIFO clamp bookkeeping must still run for them.
        sim = Simulator()
        order: list[int] = []
        sim.schedule_at(1.0, order.append, 1, lane="w")
        sim.schedule_at(1.0, order.append, 2, lane="w")
        sim.run()
        assert order == [1, 2]
