"""CLI surface for the runtime flags: parsing, rejection, end-to-end."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_run_accepts_runtime_and_workers(self):
        args = build_parser().parse_args(
            ["run", "--runtime", "threads", "--workers", "4"]
        )
        assert args.runtime == "threads"
        assert args.workers == 4

    def test_sweep_accepts_runtime_and_workers(self):
        args = build_parser().parse_args(
            ["sweep", "--runtime", "procs", "--workers", "2"]
        )
        assert args.runtime == "procs"
        assert args.workers == 2

    def test_inspect_accepts_runtime(self):
        args = build_parser().parse_args(["inspect", "--runtime", "threads"])
        assert args.runtime == "threads"

    def test_default_runtime_is_des(self):
        args = build_parser().parse_args(["run"])
        assert args.runtime == "des"
        assert args.workers is None

    def test_unknown_runtime_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--runtime", "gpu"])


class TestWorkersUnderDes:
    def test_run_rejects_workers_without_parallel_runtime(self):
        with pytest.raises(SystemExit, match="--runtime threads"):
            main(["run", "--workers", "4", "--updates", "5"])

    def test_sweep_rejects_workers_without_parallel_runtime(self):
        with pytest.raises(SystemExit, match="--runtime threads"):
            main(["sweep", "--workers", "4", "--updates", "5"])


class TestEndToEnd:
    def test_run_on_threads_runtime(self, capsys):
        rc = main(
            ["run", "--runtime", "threads", "--workers", "2",
             "--updates", "10", "--seed", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "MVC level" in out

    def test_run_des_default_still_works(self, capsys):
        rc = main(["run", "--updates", "10", "--seed", "3"])
        assert rc == 0
        assert "MVC level" in capsys.readouterr().out
