"""Thread-safety of the observability substrates under real concurrency.

The DES kernel is single-threaded so the plain ``Trace`` and
``MetricsRegistry`` never needed locks; the parallel runtimes record from
many worker threads at once.  These tests hammer the locked variants from
multiple threads and assert no updates are lost — which the unlocked
``Counter.add`` (a non-atomic read-modify-write over ``__slots__``) does
not guarantee.
"""

from __future__ import annotations

import threading

from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import ThreadSafeTrace

THREADS = 8
PER_THREAD = 2_000


def hammer(fn) -> None:
    workers = [threading.Thread(target=fn, args=(t,)) for t in range(THREADS)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestLockedRegistry:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry(locked=True)
        counter = registry.counter("events")

        def work(_t: int) -> None:
            for _ in range(PER_THREAD):
                counter.inc()

        hammer(work)
        assert counter.value == THREADS * PER_THREAD

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry(locked=True)
        histogram = registry.histogram("latency")

        def work(t: int) -> None:
            for i in range(PER_THREAD):
                histogram.observe(float(t * PER_THREAD + i))

        hammer(work)
        assert histogram.count == THREADS * PER_THREAD

    def test_concurrent_get_or_create_yields_one_instance(self):
        registry = MetricsRegistry(locked=True)
        seen = []
        barrier = threading.Barrier(THREADS)

        def work(_t: int) -> None:
            barrier.wait()
            seen.append(registry.counter("shared"))

        hammer(work)
        assert len({id(c) for c in seen}) == 1

    def test_unlocked_registry_unchanged_for_des(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(2)
        assert counter.value == 2
        assert type(counter).__name__ == "Counter"


class TestThreadSafeTrace:
    def test_concurrent_records_all_land(self):
        trace = ThreadSafeTrace()

        def work(t: int) -> None:
            for i in range(PER_THREAD):
                trace.record(float(i), "tick", f"w{t}", seq=i)

        hammer(work)
        assert len(trace.of_kind("tick")) == THREADS * PER_THREAD

    def test_digest_stable_under_same_content(self):
        a, b = ThreadSafeTrace(), ThreadSafeTrace()
        for trace in (a, b):
            trace.record(1.0, "tick", "p", seq=0)
            trace.record(2.0, "tock", "p", seq=1)
        assert a.digest() == b.digest()
