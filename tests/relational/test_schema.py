"""Tests for schemas and attribute types."""

import pytest

from repro.errors import SchemaError
from repro.relational.schema import Attribute, AttrType, Schema


class TestAttrType:
    def test_int_accepts_int(self):
        assert AttrType.INT.accepts(5)

    def test_int_rejects_bool(self):
        assert not AttrType.INT.accepts(True)

    def test_int_rejects_float(self):
        assert not AttrType.INT.accepts(5.0)

    def test_float_accepts_int_and_float(self):
        assert AttrType.FLOAT.accepts(5)
        assert AttrType.FLOAT.accepts(5.5)

    def test_float_rejects_bool(self):
        assert not AttrType.FLOAT.accepts(False)

    def test_str_accepts_str_only(self):
        assert AttrType.STR.accepts("x")
        assert not AttrType.STR.accepts(1)

    def test_bool_accepts_bool_only(self):
        assert AttrType.BOOL.accepts(True)
        assert not AttrType.BOOL.accepts(1)

    def test_python_type(self):
        assert AttrType.INT.python_type is int
        assert AttrType.STR.python_type is str


class TestAttribute:
    def test_default_type_is_int(self):
        assert Attribute("a").type is AttrType.INT

    def test_rejects_non_identifier_name(self):
        with pytest.raises(SchemaError):
            Attribute("not a name")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_str_rendering(self):
        assert str(Attribute("a", AttrType.STR)) == "a:str"


class TestSchema:
    def test_accepts_bare_strings(self):
        schema = Schema(["a", "b"])
        assert schema.names == ("a", "b")

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            Schema(["a", "a"])

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_contains_and_getitem(self):
        schema = Schema(["a", "b"])
        assert "a" in schema
        assert "z" not in schema
        assert schema["b"].name == "b"

    def test_getitem_unknown_raises(self):
        with pytest.raises(SchemaError):
            Schema(["a"])["z"]

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_validate_accepts_matching_row(self):
        Schema(["a", "b"]).validate({"a": 1, "b": 2})

    def test_validate_missing_attribute(self):
        with pytest.raises(SchemaError, match="missing"):
            Schema(["a", "b"]).validate({"a": 1})

    def test_validate_extra_attribute(self):
        with pytest.raises(SchemaError, match="not in schema"):
            Schema(["a"]).validate({"a": 1, "z": 2})

    def test_validate_wrong_type(self):
        with pytest.raises(SchemaError, match="expects int"):
            Schema(["a"]).validate({"a": "text"})

    def test_project_keeps_order_given(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_common_names(self):
        left = Schema(["a", "b"])
        right = Schema(["b", "c"])
        assert left.common_names(right) == ("b",)

    def test_natural_join_schema(self):
        joined = Schema(["a", "b"]).natural_join(Schema(["b", "c"]))
        assert joined.names == ("a", "b", "c")

    def test_natural_join_type_conflict(self):
        left = Schema([Attribute("b", AttrType.INT)])
        right = Schema([Attribute("b", AttrType.STR), Attribute("c")])
        with pytest.raises(SchemaError, match="type mismatch"):
            left.natural_join(right)

    def test_iteration_order(self):
        schema = Schema(["x", "a"])
        assert [a.name for a in schema] == ["x", "a"]

    def test_len(self):
        assert len(Schema(["a", "b", "c"])) == 3
