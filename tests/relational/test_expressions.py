"""Tests for relational expressions and schema inference."""

import pytest

from repro.errors import ExpressionError
from repro.relational.expressions import (
    BaseRelation,
    Join,
    Project,
    Select,
    ViewDefinition,
    join_all,
)
from repro.relational.predicates import eq
from repro.relational.schema import Schema

SCHEMAS = {
    "R": Schema(["A", "B"]),
    "S": Schema(["B", "C"]),
    "T": Schema(["C", "D"]),
}


class TestBaseRelation:
    def test_base_relations(self):
        assert BaseRelation("R").base_relations() == frozenset({"R"})

    def test_schema(self):
        assert BaseRelation("R").infer_schema(SCHEMAS).names == ("A", "B")

    def test_unknown_relation(self):
        with pytest.raises(ExpressionError):
            BaseRelation("Z").infer_schema(SCHEMAS)


class TestSelect:
    def test_schema_passthrough(self):
        expr = Select(eq("A", 1), BaseRelation("R"))
        assert expr.infer_schema(SCHEMAS).names == ("A", "B")

    def test_unknown_predicate_attribute(self):
        expr = Select(eq("Z", 1), BaseRelation("R"))
        with pytest.raises(ExpressionError, match="Z"):
            expr.infer_schema(SCHEMAS)

    def test_base_relations_pass_through(self):
        expr = Select(eq("A", 1), BaseRelation("R"))
        assert expr.base_relations() == frozenset({"R"})


class TestProject:
    def test_schema_projection(self):
        expr = Project(("B",), BaseRelation("R"))
        assert expr.infer_schema(SCHEMAS).names == ("B",)

    def test_empty_projection_rejected(self):
        with pytest.raises(ExpressionError):
            Project((), BaseRelation("R"))

    def test_duplicate_projection_rejected(self):
        with pytest.raises(ExpressionError):
            Project(("A", "A"), BaseRelation("R"))

    def test_unknown_projection_attribute(self):
        with pytest.raises(ExpressionError):
            Project(("Z",), BaseRelation("R")).infer_schema(SCHEMAS)


class TestJoin:
    def test_natural_join_attributes(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        assert expr.join_attributes(SCHEMAS) == ("B",)
        assert expr.infer_schema(SCHEMAS).names == ("A", "B", "C")

    def test_explicit_join_attributes(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"), on=("B",))
        assert expr.join_attributes(SCHEMAS) == ("B",)

    def test_explicit_join_missing_attribute(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"), on=("Z",))
        with pytest.raises(ExpressionError):
            expr.join_attributes(SCHEMAS)

    def test_cross_product_when_no_shared_names(self):
        expr = Join(BaseRelation("R"), BaseRelation("T"))
        assert expr.join_attributes(SCHEMAS) == ()
        assert expr.infer_schema(SCHEMAS).names == ("A", "B", "C", "D")

    def test_base_relations_union(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        assert expr.base_relations() == frozenset({"R", "S"})

    def test_join_all_left_deep(self):
        expr = join_all(BaseRelation("R"), BaseRelation("S"), BaseRelation("T"))
        assert expr.infer_schema(SCHEMAS).names == ("A", "B", "C", "D")

    def test_join_all_empty_rejected(self):
        with pytest.raises(ExpressionError):
            join_all()


class TestViewDefinition:
    def test_name_validation(self):
        with pytest.raises(ExpressionError):
            ViewDefinition("bad name", BaseRelation("R"))

    def test_base_relations(self):
        view = ViewDefinition("V", Join(BaseRelation("R"), BaseRelation("S")))
        assert view.base_relations() == frozenset({"R", "S"})

    def test_str(self):
        view = ViewDefinition("V", BaseRelation("R"))
        assert str(view) == "V = R"
