"""Tests for the view-definition parser."""

import pytest

from repro.errors import ParseError
from repro.relational.expressions import BaseRelation, Join, Project, Select
from repro.relational.parser import parse_query, parse_view
from repro.relational.predicates import And, Comparison, Const, Not, Or


class TestBasics:
    def test_select_star(self):
        view = parse_view("V = SELECT * FROM R")
        assert view.name == "V"
        assert view.expression == BaseRelation("R")

    def test_projection(self):
        view = parse_view("V = SELECT a, b FROM R")
        assert isinstance(view.expression, Project)
        assert view.expression.names == ("a", "b")

    def test_natural_join(self):
        view = parse_view("V = SELECT * FROM R JOIN S")
        assert view.expression == Join(BaseRelation("R"), BaseRelation("S"))

    def test_join_chain_left_deep(self):
        view = parse_view("V = SELECT * FROM R JOIN S JOIN T")
        expr = view.expression
        assert isinstance(expr, Join)
        assert isinstance(expr.left, Join)

    def test_join_on(self):
        view = parse_view("V = SELECT * FROM R JOIN S ON (B)")
        assert view.expression == Join(BaseRelation("R"), BaseRelation("S"), ("B",))

    def test_join_on_multiple(self):
        view = parse_view("V = SELECT * FROM R JOIN S ON (B, C)")
        assert view.expression.on == ("B", "C")

    def test_keywords_case_insensitive(self):
        view = parse_view("V = select * from R join S where B = 1")
        assert isinstance(view.expression, Select)


class TestPredicates:
    def test_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            view = parse_view(f"V = SELECT * FROM R WHERE a {op} 5")
            assert isinstance(view.expression, Select)
            assert view.expression.predicate.op == op

    def test_numbers(self):
        view = parse_view("V = SELECT * FROM R WHERE a = -3")
        assert view.expression.predicate.rhs == Const(-3)
        view = parse_view("V = SELECT * FROM R WHERE a = 2.5")
        assert view.expression.predicate.rhs == Const(2.5)

    def test_string_literal(self):
        view = parse_view("V = SELECT * FROM R WHERE name = 'west'")
        assert view.expression.predicate.rhs == Const("west")

    def test_escaped_quote(self):
        view = parse_view(r"V = SELECT * FROM R WHERE name = 'o\'brien'")
        assert view.expression.predicate.rhs == Const("o'brien")

    def test_booleans(self):
        view = parse_view("V = SELECT * FROM R WHERE flag = true")
        assert view.expression.predicate.rhs == Const(True)

    def test_and_or_precedence(self):
        view = parse_view("V = SELECT * FROM R WHERE a = 1 OR b = 2 AND c = 3")
        pred = view.expression.predicate
        assert isinstance(pred, Or)
        assert isinstance(pred.right, And)

    def test_parentheses(self):
        view = parse_view("V = SELECT * FROM R WHERE (a = 1 OR b = 2) AND c = 3")
        pred = view.expression.predicate
        assert isinstance(pred, And)
        assert isinstance(pred.left, Or)

    def test_not(self):
        view = parse_view("V = SELECT * FROM R WHERE NOT a = 1")
        assert isinstance(view.expression.predicate, Not)

    def test_attr_vs_attr(self):
        view = parse_view("V = SELECT * FROM R WHERE a = b")
        pred = view.expression.predicate
        assert isinstance(pred, Comparison)


class TestStructure:
    def test_projection_above_selection(self):
        view = parse_view("V = SELECT a FROM R WHERE b = 1")
        assert isinstance(view.expression, Project)
        assert isinstance(view.expression.child, Select)

    def test_parse_query_without_name(self):
        expr = parse_query("SELECT * FROM R JOIN S")
        assert isinstance(expr, Join)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "V = SELECT FROM R",
            "V = SELECT * R",
            "V SELECT * FROM R",
            "V = SELECT * FROM R WHERE",
            "V = SELECT * FROM R extra",
            "V = SELECT * FROM R WHERE a ==",
            "V = SELECT * FROM",
            "",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(ParseError):
            parse_view(text)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_view("V = SELECT * FROM R WHERE a = #")

    def test_trailing_input_reported(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_view("V = SELECT * FROM R SELECT")
