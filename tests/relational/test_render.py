"""Tests for SQL rendering and parse/render round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExpressionError
from repro.relational.expressions import BaseRelation, Join, Select
from repro.relational.parser import parse_view
from repro.relational.predicates import eq
from repro.relational.render import render_predicate, to_sql


class TestBasics:
    def test_select_star(self):
        assert to_sql(parse_view("V = SELECT * FROM R")) == "V = SELECT * FROM R"

    def test_projection_and_where(self):
        text = "V = SELECT a, b FROM R JOIN S WHERE a >= 5 AND b != 'x'"
        assert parse_view(to_sql(parse_view(text))) == parse_view(text)

    def test_join_on(self):
        text = "V = SELECT * FROM R JOIN S ON (B, C)"
        assert to_sql(parse_view(text)) == text

    def test_string_escaping(self):
        text = r"V = SELECT * FROM R WHERE name = 'o\'brien'"
        assert parse_view(to_sql(parse_view(text))) == parse_view(text)

    def test_booleans_and_not(self):
        text = "V = SELECT * FROM R WHERE NOT (flag = true)"
        assert parse_view(to_sql(parse_view(text))) == parse_view(text)

    def test_non_canonical_shape_rejected(self):
        weird = Join(Select(eq("a", 1), BaseRelation("R")), BaseRelation("S"))
        with pytest.raises(ExpressionError):
            to_sql(weird)

    def test_right_deep_join_rejected(self):
        weird = Join(BaseRelation("R"), Join(BaseRelation("S"), BaseRelation("T")))
        with pytest.raises(ExpressionError):
            to_sql(weird)

    def test_render_predicate_standalone(self):
        assert render_predicate(eq("a", 5)) == "a = 5"


# -- property: parse -> render -> parse is the identity ----------------------

NAMES = st.sampled_from(["a", "b", "c", "d"])
RELS = st.sampled_from(["R", "S", "T"])
VALUES = st.one_of(
    st.integers(min_value=-9, max_value=9),
    st.sampled_from(["'x'", "'hello world'", "true", "false"]),
)
OPS = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def view_texts(draw) -> str:
    columns = draw(
        st.one_of(
            st.just("*"),
            st.lists(NAMES, min_size=1, max_size=3, unique=True).map(", ".join),
        )
    )
    relations = draw(st.lists(RELS, min_size=1, max_size=3, unique=True))
    source = " JOIN ".join(relations)
    where = ""
    if draw(st.booleans()):
        clauses = [
            f"{draw(NAMES)} {draw(OPS)} {draw(VALUES)}"
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
        connector = draw(st.sampled_from([" AND ", " OR "]))
        where = " WHERE " + connector.join(clauses)
    return f"V = SELECT {columns} FROM {source}{where}"


@given(text=view_texts())
@settings(max_examples=200, deadline=None)
def test_parse_render_round_trip(text):
    first = parse_view(text)
    rendered = to_sql(first)
    assert parse_view(rendered) == first
