"""Multi-query optimization: PlanLibrary sharing across compiled plans.

Same-shard views sharing a select/project/join prefix must share the
compiled nodes — one delta probe per batch feeds every reader — while
staying bag-for-bag identical to independent plans, the unindexed delta
rules, and full recomputation.
"""

import pytest

from repro.errors import ExpressionError
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan, PlanLibrary
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema


def make_db() -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i % 4) for i in range(12)]
    )
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=i % 4, C=i) for i in range(8)]
    )
    return db


JOIN = Join(BaseRelation("R"), BaseRelation("S"))
#: three views over the same join prefix — the MQO target shape.
SHARED_PREFIX = {
    "V_join": JOIN,
    "V_spj": Project(("A", "C"), Select(compare("C", "<", 6), JOIN)),
    "V_agg": Aggregate(
        ("B",),
        (AggregateSpec("count", "n"), AggregateSpec("sum", "total", "C")),
        JOIN,
    ),
}

BATCHES = [
    {"R": Delta.insert(Row(A=50, B=1))},
    {"S": Delta.insert(Row(B=1, C=99), 3)},
    {"R": Delta.modify(Row(A=50, B=1), Row(A=50, B=2))},
    {
        "R": Delta.delete(Row(A=0, B=0)),
        "S": Delta.delete(Row(B=0, C=0)),
    },
    {"S": Delta.modify(Row(B=1, C=1), Row(B=3, C=1))},
]


def drive(library_db, views=SHARED_PREFIX, batches=BATCHES):
    """Run a library over batches; assert equivalence with legacy delta
    rules and full recomputation at every step.  Returns the library."""
    library = PlanLibrary(library_db)
    for name, expr in views.items():
        library.compile(name, expr)
    materialized = {
        name: evaluate(expr, library_db) for name, expr in views.items()
    }
    for deltas in batches:
        legacy = {
            name: propagate_delta(expr, library_db, deltas)
            for name, expr in views.items()
        }
        planned = library.propagate_all(deltas)
        assert planned == legacy
        library_db.apply_deltas(deltas)
        library.advance_all()
        for name, expr in views.items():
            planned[name].apply_to(materialized[name])
            assert materialized[name] == evaluate(expr, library_db)
    return library


class TestEquivalence:
    def test_shared_prefix_views_agree_with_legacy_and_recompute(self):
        drive(make_db())

    def test_disjoint_views_share_nothing_but_still_agree(self):
        views = {
            "V_r": BaseRelation("R"),
            "V_s": Select(compare("C", "<", 5), BaseRelation("S")),
        }
        library = drive(make_db(), views=views)
        assert library.report()["shared_subexpressions"] == 0

    def test_library_plan_matches_independent_plan(self):
        db_lib, db_solo = make_db(), make_db()
        library = PlanLibrary(db_lib)
        lib_plans = {
            name: library.compile(name, expr)
            for name, expr in SHARED_PREFIX.items()
        }
        solo_plans = {
            name: MaintenancePlan(expr, db_solo)
            for name, expr in SHARED_PREFIX.items()
        }
        for deltas in BATCHES:
            lib_out = library.propagate_all(deltas)
            for name, plan in solo_plans.items():
                assert lib_out[name] == plan.propagate(deltas)
            db_lib.apply_deltas(deltas)
            db_solo.apply_deltas(deltas)
            library.advance_all()
            for plan in solo_plans.values():
                plan.advance()
        assert lib_plans  # plans stayed registered


class TestSharing:
    def test_nodes_are_literally_shared(self):
        library = PlanLibrary(make_db())
        join_plan = library.compile("V_join", SHARED_PREFIX["V_join"])
        spj_plan = library.compile("V_spj", SHARED_PREFIX["V_spj"])
        shared_ids = {id(n) for n in join_plan._nodes} & {
            id(n) for n in spj_plan._nodes
        }
        assert shared_ids  # the join subtree is one set of objects

    def test_probe_reduction_versus_independent_plans(self):
        """One delta probe feeds many views: the library probes the base
        relations strictly fewer times than independent plans do."""
        db_lib, db_solo = make_db(), make_db()
        library = PlanLibrary(db_lib)
        for name, expr in SHARED_PREFIX.items():
            library.compile(name, expr)
        solo = [
            MaintenancePlan(expr, db_solo)
            for expr in SHARED_PREFIX.values()
        ]
        for deltas in BATCHES:
            library.propagate_all(deltas)
            db_lib.apply_deltas(deltas)
            library.advance_all()
            for plan in solo:
                plan.propagate(deltas)
            db_solo.apply_deltas(deltas)
            for plan in solo:
                plan.advance()
        assert library.probe_count() < sum(p.probe_count() for p in solo)

    def test_shared_state_advances_exactly_once(self):
        """The regression MQO must not hit: a shared aux materialization
        advanced once per *reader* would double-apply deltas.  drive()
        checks recompute equality after every batch, so surviving many
        batches over a shared aggregate + join is the proof; here we also
        pin the aggregate's group state directly."""
        db = make_db()
        library = drive(db)
        agg_plan = library.plans["V_agg"]
        assert agg_plan.propagate({}) == Delta()  # clean state, no residue

    def test_report_contents(self):
        library = PlanLibrary(make_db())
        for name, expr in SHARED_PREFIX.items():
            library.compile(name, expr)
        report = library.report()
        assert report["plans"] == 3
        assert report["nodes_saved"] > 0
        assert report["total_nodes"] == report["unique_nodes"] + report[
            "nodes_saved"
        ]
        assert report["shared_subexpressions"] >= 1
        top = report["shared"][0]
        assert top["readers"] >= 2

    def test_duplicate_name_rejected(self):
        library = PlanLibrary(make_db())
        library.compile("V", JOIN)
        with pytest.raises(ExpressionError):
            library.compile("V", JOIN)
