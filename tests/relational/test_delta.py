"""Tests for deltas and incremental propagation."""

import pytest

from repro.errors import RelationError
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import BaseRelation, Join, Project, Select
from repro.relational.parser import parse_view
from repro.relational.predicates import compare
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


class TestDelta:
    def test_insert_delete_modify(self):
        assert Delta.insert(Row(a=1)).counts() == {Row(a=1): 1}
        assert Delta.delete(Row(a=1)).counts() == {Row(a=1): -1}
        assert Delta.modify(Row(a=1), Row(a=2)).counts() == {
            Row(a=1): -1,
            Row(a=2): 1,
        }

    def test_modify_identity_is_empty(self):
        assert Delta.modify(Row(a=1), Row(a=1)).is_empty()

    def test_zero_counts_dropped(self):
        assert Delta({Row(a=1): 0}).is_empty()

    def test_combined_cancels(self):
        combined = Delta.insert(Row(a=1)).combined(Delta.delete(Row(a=1)))
        assert combined.is_empty()

    def test_negated(self):
        delta = Delta({Row(a=1): 2, Row(a=2): -1})
        assert delta.negated().counts() == {Row(a=1): -2, Row(a=2): 1}

    def test_len_is_total_magnitude(self):
        assert len(Delta({Row(a=1): 2, Row(a=2): -3})) == 5

    def test_insertions_deletions_split(self):
        delta = Delta({Row(a=1): 2, Row(a=2): -3})
        assert delta.insertions() == [(Row(a=1), 2)]
        assert delta.deletions() == [(Row(a=2), 3)]

    def test_between(self):
        old = Relation(rows=[Row(a=1), Row(a=2)])
        new = Relation(rows=[Row(a=2), Row(a=2), Row(a=3)])
        delta = Delta.between(old, new)
        scratch = old.copy()
        delta.apply_to(scratch)
        assert scratch == new

    def test_apply_to(self):
        rel = Relation(rows=[Row(a=1)])
        Delta({Row(a=1): -1, Row(a=2): 1}).apply_to(rel)
        assert rel.sorted_rows() == [Row(a=2)]

    def test_apply_underflow_raises_before_mutating(self):
        rel = Relation(rows=[Row(a=1)])
        with pytest.raises(RelationError):
            Delta({Row(a=1): -2, Row(a=9): 1}).apply_to(rel)
        assert rel.sorted_rows() == [Row(a=1)]  # untouched

    def test_equality_and_hash(self):
        assert Delta.insert(Row(a=1)) == Delta({Row(a=1): 1})
        assert hash(Delta.insert(Row(a=1))) == hash(Delta({Row(a=1): 1}))


def _db() -> Database:
    db = Database()
    db.create_relation("R", Schema(["A", "B"]), [Row(A=1, B=2), Row(A=3, B=4)])
    db.create_relation("S", Schema(["B", "C"]), [Row(B=2, C=5)])
    return db


class TestPropagation:
    def test_base_delta_passthrough(self):
        delta = propagate_delta(
            BaseRelation("R"), _db(), {"R": Delta.insert(Row(A=9, B=9))}
        )
        assert delta == Delta.insert(Row(A=9, B=9))

    def test_unrelated_relation_empty(self):
        delta = propagate_delta(
            BaseRelation("R"), _db(), {"S": Delta.insert(Row(B=1, C=1))}
        )
        assert delta.is_empty()

    def test_select_filters_delta(self):
        expr = Select(compare("A", ">", 2), BaseRelation("R"))
        deltas = {"R": Delta({Row(A=1, B=9): 1, Row(A=5, B=9): 1})}
        delta = propagate_delta(expr, _db(), deltas)
        assert delta == Delta.insert(Row(A=5, B=9))

    def test_project_merges_counts(self):
        expr = Project(("B",), BaseRelation("R"))
        deltas = {"R": Delta({Row(A=8, B=7): 1, Row(A=9, B=7): 1})}
        delta = propagate_delta(expr, _db(), deltas)
        assert delta == Delta({Row(B=7): 2})

    def test_project_cancellation(self):
        expr = Project(("B",), BaseRelation("R"))
        deltas = {"R": Delta({Row(A=8, B=7): 1, Row(A=9, B=7): -1})}
        assert propagate_delta(expr, _db(), deltas).is_empty()

    def test_join_one_side(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        deltas = {"S": Delta.insert(Row(B=4, C=8))}
        delta = propagate_delta(expr, _db(), deltas)
        assert delta == Delta.insert(Row(A=3, B=4, C=8))

    def test_join_both_sides_includes_cross_term(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        deltas = {
            "R": Delta.insert(Row(A=9, B=9)),
            "S": Delta.insert(Row(B=9, C=9)),
        }
        delta = propagate_delta(expr, _db(), deltas)
        # New R row joins new S row (the dL x dS term only).
        assert delta == Delta.insert(Row(A=9, B=9, C=9))

    def test_delete_propagates_negative(self):
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        deltas = {"R": Delta.delete(Row(A=1, B=2))}
        delta = propagate_delta(expr, _db(), deltas)
        assert delta == Delta.delete(Row(A=1, B=2, C=5))

    def test_cross_product_delta(self):
        db = Database()
        db.create_relation("X", Schema(["x"]), [Row(x=1)])
        db.create_relation("Y", Schema(["y"]), [Row(y=10), Row(y=20)])
        expr = Join(BaseRelation("X"), BaseRelation("Y"))
        delta = propagate_delta(expr, db, {"X": Delta.insert(Row(x=2))})
        assert delta == Delta({Row(x=2, y=10): 1, Row(x=2, y=20): 1})

    def test_self_join_delta(self):
        """R natural-joined with itself: both delta sides fire at once."""
        db = Database()
        db.create_relation("W", Schema(["k"]), [Row(k=1)])
        expr = Join(BaseRelation("W"), BaseRelation("W"))
        before = evaluate(expr, db)
        deltas = {"W": Delta.insert(Row(k=1))}
        delta = propagate_delta(expr, db, deltas)
        db.apply_deltas(deltas)
        after = evaluate(expr, db)
        materialized = before.copy()
        delta.apply_to(materialized)
        assert materialized == after
        assert after.multiplicity(Row(k=1)) == 4  # 2 copies squared

    def test_incremental_equals_recompute(self):
        """The fundamental delta-correctness identity on a worked case."""
        db = _db()
        view = parse_view("V = SELECT A, C FROM R JOIN S WHERE A <= 3")
        before = evaluate(view.expression, db)
        deltas = {
            "R": Delta({Row(A=2, B=2): 1, Row(A=1, B=2): -1}),
            "S": Delta.insert(Row(B=4, C=0)),
        }
        delta = propagate_delta(view.expression, db, deltas)
        db.apply_deltas(deltas)
        after = evaluate(view.expression, db)
        materialized = before.copy()
        delta.apply_to(materialized)
        assert materialized == after
