"""Tests for view catalogs."""

import pytest

from repro.errors import ParseError
from repro.relational.catalog import (
    dump_views,
    load_views,
    parse_catalog,
    save_views,
)
from repro.relational.parser import parse_view


CATALOG = """
# the Table-1 views
V1 = SELECT * FROM R JOIN S      # join view
V2 = SELECT * FROM S JOIN T

V3 = SELECT B, count(*) AS n FROM S GROUP BY B
"""


class TestParse:
    def test_parses_definitions_skipping_comments(self):
        views = parse_catalog(CATALOG)
        assert [v.name for v in views] == ["V1", "V2", "V3"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_catalog("A = SELECT * FROM R\nA = SELECT * FROM S\n")

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_catalog("A = SELECT * FROM R\nB = FROM nonsense\n")

    def test_empty_catalog_rejected(self):
        with pytest.raises(ParseError, match="no view"):
            parse_catalog("# only comments\n\n")


class TestRoundTrip:
    def test_dump_and_parse(self):
        views = parse_catalog(CATALOG)
        text = dump_views(views, header="regenerated")
        again = parse_catalog(text)
        assert again == views
        assert text.startswith("# regenerated")

    def test_save_and_load(self, tmp_path):
        views = parse_catalog(CATALOG)
        path = tmp_path / "views.cat"
        save_views(views, path)
        assert load_views(path) == views

    def test_single_view_round_trip(self, tmp_path):
        view = parse_view("Hot = SELECT a FROM R WHERE a >= 3")
        path = tmp_path / "one.cat"
        save_views([view], path)
        assert load_views(path) == [view]
