"""Property test: the compiled plan equals the unindexed rules and recompute.

For ANY supported expression over R(A,B), S(B,C) — SPJ chains and
count/sum aggregates, including derived (materialized) join inputs — and
ANY sequence of mixed insert/delete/modify batches, the plan's propagated
delta must equal both ``propagate_delta`` and the recomputation difference
``evaluate(expr, post) - evaluate(expr, pre)``, at every step of the
sequence (so the plan's auxiliary state is exercised *after* it has been
advanced, not just from a fresh compile).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema

VALUES = st.integers(min_value=0, max_value=4)
SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}


def rows_for(names: tuple[str, ...]):
    return st.builds(
        lambda vals: Row(dict(zip(names, vals))),
        st.tuples(*([VALUES] * len(names))),
    )


@st.composite
def databases(draw) -> Database:
    db = Database()
    db.create_relation(
        "R", SCHEMAS["R"], draw(st.lists(rows_for(("A", "B")), max_size=6))
    )
    db.create_relation(
        "S", SCHEMAS["S"], draw(st.lists(rows_for(("B", "C")), max_size=6))
    )
    return db


@st.composite
def sides(draw, name: str) -> Expression:
    """A join operand: bare base (indexed probe) or derived (aux mat)."""
    expr: Expression = BaseRelation(name)
    if draw(st.booleans()):
        attr = draw(st.sampled_from(["A", "B"] if name == "R" else ["B", "C"]))
        op = draw(st.sampled_from(["=", "<", ">=", "!="]))
        expr = Select(compare(attr, op, draw(VALUES)), expr)
    return expr


@st.composite
def expressions(draw) -> Expression:
    shape = draw(st.sampled_from(["base", "join", "mixed_join"]))
    if shape == "base":
        expr: Expression = draw(sides(draw(st.sampled_from(["R", "S"]))))
    elif shape == "join":
        expr = Join(BaseRelation("R"), BaseRelation("S"))
    else:
        # Distinct operands so shared non-join attributes stay unambiguous.
        expr = Join(draw(sides("R")), draw(sides("S")), on=("B",))
    schema = expr.infer_schema(SCHEMAS)
    names = list(schema.names)
    if draw(st.booleans()):
        attr = draw(st.sampled_from(names))
        op = draw(st.sampled_from(["=", "<", ">=", "!="]))
        expr = Select(compare(attr, op, draw(VALUES)), expr)
    wrap = draw(st.sampled_from(["none", "project", "aggregate"]))
    if wrap == "project":
        keep = draw(st.integers(min_value=1, max_value=len(names)))
        expr = Project(tuple(names[:keep]), expr)
    elif wrap == "aggregate":
        group_by = tuple(names[: draw(st.integers(min_value=0, max_value=min(2, len(names) - 1)))])
        summed = draw(st.sampled_from(names))
        specs = (AggregateSpec("count", "cnt"), AggregateSpec("sum", "tot", summed))
        expr = Aggregate(group_by, specs, expr)
    return expr


@st.composite
def base_deltas(draw, db: Database):
    """Applicable mixed deltas: inserts anywhere, deletes of live rows."""
    deltas: dict[str, Delta] = {}
    for name, attrs in (("R", ("A", "B")), ("S", ("B", "C"))):
        counts: dict[Row, int] = {}
        for row in draw(st.lists(rows_for(attrs), max_size=3)):
            counts[row] = counts.get(row, 0) + 1
        live = list(db.relation(name))
        if live:
            victims = draw(
                st.lists(st.sampled_from(live), max_size=min(3, len(live)))
            )
            budget: dict[Row, int] = {}
            for victim in victims:
                budget[victim] = budget.get(victim, 0) + 1
            for row, wanted in budget.items():
                available = db.relation(name).multiplicity(row) + counts.get(row, 0)
                take = min(wanted, available)
                if take:
                    counts[row] = counts.get(row, 0) - take
        if counts:
            deltas[name] = Delta(counts)
    return deltas


@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_plan_equals_legacy_and_recompute(data):
    db = data.draw(databases())
    expr = data.draw(expressions())
    plan = MaintenancePlan(expr, db)
    materialized = evaluate(expr, db)

    for _step in range(data.draw(st.integers(min_value=1, max_value=3))):
        deltas = data.draw(base_deltas(db))

        pre_view = evaluate(expr, db)
        legacy = propagate_delta(expr, db, deltas)
        planned = plan.propagate(deltas)

        db.apply_deltas(deltas)
        plan.advance()
        post_view = evaluate(expr, db)

        assert planned == legacy
        assert planned == Delta.between(pre_view, post_view)

        planned.apply_to(materialized)
        assert materialized == post_view


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_plan_aggregate_group_restriction_path(data):
    """Pin the aggregate arm (legacy: the group-restricted pushdown)."""
    db = data.draw(databases())
    group_by = data.draw(st.sampled_from([(), ("B",), ("A", "B")]))
    expr = Aggregate(
        group_by,
        (AggregateSpec("count", "cnt"), AggregateSpec("sum", "tot", "A")),
        BaseRelation("R"),
    )
    plan = MaintenancePlan(expr, db)
    for _step in range(2):
        deltas = data.draw(base_deltas(db))
        legacy = propagate_delta(expr, db, deltas)
        planned = plan.propagate(deltas)
        assert planned == legacy
        db.apply_deltas(deltas)
        plan.advance()
