"""Property tests: the columnar engine is bag-for-bag the row-dict one.

Facade-equivalence contract for the columnar core (see docs/engine.md):
for ANY supported expression over R(A,B), S(B,C) and ANY applicable mixed
delta sequence,

* ``evaluate_columnar`` equals the row-dict ``evaluate``;
* a ``engine="columnar"`` plan's propagated delta equals the
  ``engine="rows"`` reference plan's AND the unindexed
  ``propagate_delta`` — at every step of a multi-batch sequence, so the
  columnar auxiliary state (aux materializations, aggregate group
  states) is exercised after advancing, not just from a fresh compile.

Deterministic edge cases ride along: empty relations, all-delete deltas
that empty the database, and duplicate-row multiplicities.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import evaluate
from repro.relational.columnar import evaluate_columnar
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema

VALUES = st.integers(min_value=0, max_value=4)
SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}


def rows_for(names: tuple[str, ...]):
    return st.builds(
        lambda vals: Row(dict(zip(names, vals))),
        st.tuples(*([VALUES] * len(names))),
    )


@st.composite
def databases(draw, min_size: int = 0) -> Database:
    # small value domain + up to 6 rows per relation => duplicate rows
    # (multiplicity > 1) appear routinely
    db = Database()
    db.create_relation(
        "R",
        SCHEMAS["R"],
        draw(st.lists(rows_for(("A", "B")), min_size=min_size, max_size=6)),
    )
    db.create_relation(
        "S",
        SCHEMAS["S"],
        draw(st.lists(rows_for(("B", "C")), min_size=min_size, max_size=6)),
    )
    return db


@st.composite
def sides(draw, name: str) -> Expression:
    """A join operand: bare base (indexed probe) or derived (aux mat)."""
    expr: Expression = BaseRelation(name)
    if draw(st.booleans()):
        attr = draw(st.sampled_from(["A", "B"] if name == "R" else ["B", "C"]))
        op = draw(st.sampled_from(["=", "<", ">=", "!="]))
        expr = Select(compare(attr, op, draw(VALUES)), expr)
    return expr


@st.composite
def expressions(draw) -> Expression:
    shape = draw(st.sampled_from(["base", "join", "mixed_join"]))
    if shape == "base":
        expr: Expression = draw(sides(draw(st.sampled_from(["R", "S"]))))
    elif shape == "join":
        expr = Join(BaseRelation("R"), BaseRelation("S"))
    else:
        expr = Join(draw(sides("R")), draw(sides("S")), on=("B",))
    schema = expr.infer_schema(SCHEMAS)
    names = list(schema.names)
    if draw(st.booleans()):
        attr = draw(st.sampled_from(names))
        op = draw(st.sampled_from(["=", "<", ">=", "!="]))
        expr = Select(compare(attr, op, draw(VALUES)), expr)
    wrap = draw(st.sampled_from(["none", "project", "aggregate"]))
    if wrap == "project":
        keep = draw(st.integers(min_value=1, max_value=len(names)))
        expr = Project(tuple(names[:keep]), expr)
    elif wrap == "aggregate":
        group_by = tuple(
            names[: draw(st.integers(min_value=0, max_value=min(2, len(names) - 1)))]
        )
        summed = draw(st.sampled_from(names))
        specs = (AggregateSpec("count", "cnt"), AggregateSpec("sum", "tot", summed))
        expr = Aggregate(group_by, specs, expr)
    return expr


@st.composite
def base_deltas(draw, db: Database):
    """Applicable mixed deltas: inserts anywhere, deletes of live rows."""
    deltas: dict[str, Delta] = {}
    for name, attrs in (("R", ("A", "B")), ("S", ("B", "C"))):
        counts: dict[Row, int] = {}
        for row in draw(st.lists(rows_for(attrs), max_size=3)):
            counts[row] = counts.get(row, 0) + 1
        live = list(db.relation(name))
        if live:
            victims = draw(
                st.lists(st.sampled_from(live), max_size=min(3, len(live)))
            )
            budget: dict[Row, int] = {}
            for victim in victims:
                budget[victim] = budget.get(victim, 0) + 1
            for row, wanted in budget.items():
                available = db.relation(name).multiplicity(row) + counts.get(row, 0)
                take = min(wanted, available)
                if take:
                    counts[row] = counts.get(row, 0) - take
        if counts:
            deltas[name] = Delta(counts)
    return deltas


@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_evaluate_columnar_equals_row_dict_evaluate(data):
    db = data.draw(databases())
    expr = data.draw(expressions())
    assert evaluate_columnar(expr, db) == evaluate(expr, db)


@given(data=st.data())
@settings(max_examples=120, deadline=None)
def test_columnar_plan_equals_rows_plan_and_legacy(data):
    db_c = data.draw(databases())
    expr = data.draw(expressions())
    # an identical twin database drives the reference engine so auxiliary
    # state on both sides evolves from the same batches independently
    db_r = Database()
    for name in ("R", "S"):
        db_r.create_relation(name, SCHEMAS[name], list(db_c.relation(name)))

    plan_c = MaintenancePlan(expr, db_c, engine="columnar")
    plan_r = MaintenancePlan(expr, db_r, engine="rows")

    for _step in range(data.draw(st.integers(min_value=1, max_value=3))):
        deltas = data.draw(base_deltas(db_c))
        legacy = propagate_delta(expr, db_c, deltas)
        out_c = plan_c.propagate(deltas)
        out_r = plan_r.propagate(deltas)
        assert out_c == out_r
        assert out_c == legacy
        db_c.apply_deltas(deltas)
        db_r.apply_deltas(deltas)
        plan_c.advance()
        plan_r.advance()


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_all_delete_deltas_drain_to_empty(data):
    """Edge: a delta that deletes *everything* leaves both engines at the
    empty view — exercises group death and aux-materialization draining."""
    db = data.draw(databases(min_size=1))
    expr = data.draw(expressions())
    plan = MaintenancePlan(expr, db)
    materialized = evaluate(expr, db)

    wipe = {
        name: Delta({row: -count for row, count in db.relation(name).counts()})
        for name in ("R", "S")
        if len(db.relation(name))
    }
    legacy = propagate_delta(expr, db, wipe)
    planned = plan.propagate(wipe)
    assert planned == legacy
    db.apply_deltas(wipe)
    plan.advance()
    planned.apply_to(materialized)
    assert materialized == evaluate(expr, db)
    assert len(db.relation("R")) == 0 and len(db.relation("S")) == 0
    # the engine keeps working after total drain
    refill = {"R": Delta.insert(Row(A=1, B=1), 2)}
    assert plan.propagate(refill) == propagate_delta(expr, db, refill)


def test_empty_relations_everywhere():
    """Edge: propagation over a fully empty database is the empty delta."""
    db = Database()
    db.create_relation("R", SCHEMAS["R"])
    db.create_relation("S", SCHEMAS["S"])
    expr = Project(
        ("A", "C"),
        Select(compare("C", "<", 3), Join(BaseRelation("R"), BaseRelation("S"))),
    )
    plan = MaintenancePlan(expr, db)
    assert plan.propagate({}) == Delta()
    deltas = {"R": Delta.insert(Row(A=1, B=1))}
    assert plan.propagate(deltas) == Delta()  # still no S side to join
    db.apply_deltas(deltas)
    plan.advance()


def test_duplicate_row_multiplicities_multiply_through_joins():
    """Edge: counts multiply — 2 copies of the R row x 3 copies of the S
    row must produce 6 copies of the joined row on both engines."""
    db_c = Database()
    db_c.create_relation("R", SCHEMAS["R"], [Row(A=1, B=1)] * 2)
    db_c.create_relation("S", SCHEMAS["S"], [Row(B=1, C=1)] * 3)
    db_r = Database()
    db_r.create_relation("R", SCHEMAS["R"], [Row(A=1, B=1)] * 2)
    db_r.create_relation("S", SCHEMAS["S"], [Row(B=1, C=1)] * 3)
    expr = Join(BaseRelation("R"), BaseRelation("S"))
    plan_c = MaintenancePlan(expr, db_c)
    plan_r = MaintenancePlan(expr, db_r, engine="rows")

    deltas = {"R": Delta.insert(Row(A=1, B=1), 2)}
    out_c, out_r = plan_c.propagate(deltas), plan_r.propagate(deltas)
    assert out_c == out_r
    assert out_c.count(Row(A=1, B=1, C=1)) == 6
