"""Tests for database states and versioning."""

import pytest

from repro.errors import SourceError
from repro.relational.database import Database, VersionedDatabase
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.relational.schema import Schema


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_relation("R", Schema(["a"]), [Row(a=1)])
        assert len(db.relation("R")) == 1
        assert "R" in db

    def test_duplicate_relation_rejected(self):
        db = Database()
        db.create_relation("R", Schema(["a"]))
        with pytest.raises(SourceError):
            db.create_relation("R", Schema(["a"]))

    def test_unknown_relation(self):
        with pytest.raises(SourceError):
            Database().relation("Z")

    def test_apply_deltas(self):
        db = Database()
        db.create_relation("R", Schema(["a"]))
        db.apply_deltas({"R": Delta.insert(Row(a=1))})
        assert Row(a=1) in db.relation("R")

    def test_snapshot_is_frozen(self):
        db = Database()
        db.create_relation("R", Schema(["a"]))
        snap = db.snapshot()
        with pytest.raises(SourceError):
            snap.apply_deltas({"R": Delta.insert(Row(a=1))})

    def test_snapshot_is_independent(self):
        db = Database()
        db.create_relation("R", Schema(["a"]))
        snap = db.snapshot()
        db.apply_deltas({"R": Delta.insert(Row(a=1))})
        assert len(snap.relation("R")) == 0
        assert len(db.relation("R")) == 1

    def test_same_state_as(self):
        db1, db2 = Database(), Database()
        for db in (db1, db2):
            db.create_relation("R", Schema(["a"]), [Row(a=1)])
        assert db1.same_state_as(db2)
        db2.apply_deltas({"R": Delta.insert(Row(a=2))})
        assert not db1.same_state_as(db2)

    def test_fingerprint_changes_with_content(self):
        db = Database()
        db.create_relation("R", Schema(["a"]))
        before = db.state_fingerprint()
        db.apply_deltas({"R": Delta.insert(Row(a=1))})
        assert db.state_fingerprint() != before


class TestVersionedDatabase:
    def test_initial_version_zero(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        assert vdb.version == 0
        assert len(vdb.as_of(0).relation("R")) == 0

    def test_commit_advances_version(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        v = vdb.commit({"R": Delta.insert(Row(a=1))})
        assert v == 1
        assert vdb.version == 1

    def test_as_of_returns_historical_state(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        vdb.commit({"R": Delta.insert(Row(a=1))})
        vdb.commit({"R": Delta.insert(Row(a=2))})
        assert len(vdb.as_of(0).relation("R")) == 0
        assert len(vdb.as_of(1).relation("R")) == 1
        assert len(vdb.as_of(2).relation("R")) == 2

    def test_as_of_future_version_raises(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        with pytest.raises(SourceError):
            vdb.as_of(3)

    def test_failed_commit_leaves_state_unchanged(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        with pytest.raises(Exception):
            vdb.commit({"R": Delta.delete(Row(a=99))})
        assert vdb.version == 0
        assert len(vdb.current.relation("R")) == 0

    def test_create_after_commit_rejected(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        vdb.commit({"R": Delta.insert(Row(a=1))})
        with pytest.raises(SourceError):
            vdb.create_relation("S", Schema(["b"]))

    def test_prune(self):
        vdb = VersionedDatabase()
        vdb.create_relation("R", Schema(["a"]))
        for i in range(4):
            vdb.commit({"R": Delta.insert(Row(a=i))})
        vdb.prune_below(3)
        assert vdb.retained_versions() == (3, 4)
        with pytest.raises(SourceError, match="pruned"):
            vdb.as_of(1)
        assert len(vdb.as_of(3).relation("R")) == 3
