"""Unit tests for the columnar core and its row-dict facade contract.

Covers the storage (ColumnarRelation / ColumnIndex / ColumnarDelta), the
compiled kernels (filters, projections, merges, aggregate folds), the
facade hooks (Row.values_tuple, Relation.columnar lockstep, positional
HashIndex keys), vectorized full evaluation, and the plan engine switch
(``engine="columnar"`` vs the ``"rows"`` reference).
"""

import pytest

from repro.errors import ExpressionError, RelationError, SchemaError
from repro.relational.algebra import evaluate
from repro.relational.columnar import (
    AggregateKernel,
    ColumnarDelta,
    ColumnarRelation,
    ColumnIndex,
    compile_filter,
    compile_merge,
    compile_projection,
    evaluate_columnar,
    layout_of,
    make_key,
    row_of,
)
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.relational.indexes import HashIndex
from repro.relational.plan import MaintenancePlan, PlanLibrary
from repro.relational.predicates import TRUE, Predicate, compare
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


def make_db() -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i % 4) for i in range(12)]
    )
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=i % 4, C=i) for i in range(8)]
    )
    return db


class TestLayoutAndRows:
    def test_layout_is_sorted(self):
        assert layout_of(("C", "A", "B")) == ("A", "B", "C")

    def test_row_of_round_trips(self):
        layout = layout_of(("B", "A"))
        row = Row(A=1, B=2)
        assert row_of(layout, row.values_tuple(layout)) == row

    def test_values_tuple_fast_path_matches_fallback(self):
        row = Row(A=1, B=2, C=3)
        assert row.values_tuple(("A", "B", "C")) == (1, 2, 3)
        # a non-sorted / partial layout exercises the per-name fallback
        assert row.values_tuple(("C", "A")) == (3, 1)

    def test_values_tuple_missing_attribute_raises(self):
        with pytest.raises(SchemaError):
            Row(A=1).values_tuple(("A", "Z"))


class TestColumnarRelation:
    def test_bag_semantics_and_lengths(self):
        table = ColumnarRelation(("A", "B"))
        table.insert((1, 2), 3)
        table.insert((4, 5))
        assert len(table) == 4
        assert table.distinct_count() == 2
        assert table.multiplicity((1, 2)) == 3
        table.delete((1, 2), 2)
        assert table.multiplicity((1, 2)) == 1
        table.delete((1, 2))
        assert (1, 2) not in table

    def test_delete_underflow_raises(self):
        table = ColumnarRelation(("A",), {(1,): 1})
        with pytest.raises(RelationError):
            table.delete((1,), 2)
        with pytest.raises(RelationError):
            table.delete((9,))

    def test_negative_multiplicity_rejected_at_construction(self):
        with pytest.raises(RelationError):
            ColumnarRelation(("A",), {(1,): -1})

    def test_apply_signed_is_atomic_on_underflow(self):
        table = ColumnarRelation(("A",), {(1,): 2, (2,): 1})
        with pytest.raises(RelationError):
            table.apply_signed({(3,): 5, (2,): -4})
        # the failed batch left nothing behind — not even the insert
        assert dict(table.counts_view()) == {(1,): 2, (2,): 1}

    def test_apply_signed_deletes_before_inserts(self):
        table = ColumnarRelation(("A",), {(1,): 1})
        table.apply_signed({(1,): -1, (2,): 1})
        assert dict(table.counts_view()) == {(2,): 1}

    def test_column_vectors_align_with_multiplicities(self):
        table = ColumnarRelation(("A", "B"), {(1, 10): 2, (3, 30): 1})
        columns, mults = table.column_vectors()
        rebuilt = {
            (columns[0][j], columns[1][j]): mults[j]
            for j in range(len(mults))
        }
        assert rebuilt == {(1, 10): 2, (3, 30): 1}

    def test_row_facade_round_trip(self):
        counts = {Row(A=1, B=2): 2, Row(A=3, B=4): 1}
        table = ColumnarRelation.from_rows(("A", "B"), counts)
        assert table.to_rows() == counts


class TestColumnIndex:
    def test_scalar_and_tuple_key_conventions(self):
        layout = ("A", "B", "C")
        assert make_key(layout, ("B",))((1, 2, 3)) == 2
        assert make_key(layout, ("A", "C"))((1, 2, 3)) == (1, 3)
        assert make_key(layout, ())((1, 2, 3)) == ()

    def test_buckets_track_mutations_in_lockstep(self):
        table = ColumnarRelation(("A", "B"), {(1, 0): 1, (2, 0): 1, (3, 1): 1})
        index = table.index_on(("B",))
        assert dict(index.bucket(0)) == {(1, 0): 1, (2, 0): 1}
        table.insert((4, 0))
        table.delete((1, 0))
        assert dict(index.bucket(0)) == {(2, 0): 1, (4, 0): 1}
        assert dict(index.bucket(7)) == {}

    def test_empty_key_buckets_everything(self):
        table = ColumnarRelation(("A",), {(1,): 2, (2,): 1})
        index = table.index_on(())
        assert dict(index.bucket(())) == {(1,): 2, (2,): 1}

    def test_index_is_cached_per_attrs(self):
        table = ColumnarRelation(("A", "B"))
        assert table.index_on(("B",)) is table.index_on(("B",))
        assert isinstance(table.index_on(("B",)), ColumnIndex)


class TestColumnarDelta:
    def test_facade_round_trip(self):
        delta = Delta({Row(A=1, B=2): 2, Row(A=3, B=4): -1})
        cd = ColumnarDelta.from_delta(("A", "B"), delta)
        assert cd.to_delta() == delta
        assert len(cd) == 3

    def test_zero_counts_dropped(self):
        assert ColumnarDelta(("A",), {(1,): 0}).is_empty()

    def test_combined_cancels(self):
        a = ColumnarDelta(("A",), {(1,): 2})
        b = ColumnarDelta(("A",), {(1,): -2, (2,): 1})
        assert a.combined(b) == ColumnarDelta(("A",), {(2,): 1})

    def test_apply_to_batches_through_validation(self):
        table = ColumnarRelation(("A",), {(1,): 1})
        ColumnarDelta(("A",), {(1,): -1, (5,): 2}).apply_to(table)
        assert dict(table.counts_view()) == {(5,): 2}
        with pytest.raises(RelationError):
            ColumnarDelta(("A",), {(5,): -3}).apply_to(table)
        assert dict(table.counts_view()) == {(5,): 2}


class TestCompiledKernels:
    LAYOUT = ("A", "B")

    def test_true_predicate_compiles_to_none(self):
        assert compile_filter(TRUE, self.LAYOUT) is None

    def test_filter_matches_interpreted_semantics(self):
        pred = compare("A", "<", 3)
        kernel = compile_filter(pred, self.LAYOUT)
        counts = {(1, 9): 2, (3, 9): 1, (2, 0): -1}
        expected = {
            t: c for t, c in counts.items()
            if pred.evaluate(row_of(self.LAYOUT, t))
        }
        assert kernel(counts) == expected

    def test_filter_type_error_becomes_expression_error(self):
        kernel = compile_filter(compare("A", "<", 3), self.LAYOUT)
        with pytest.raises(ExpressionError):
            kernel({("not-an-int", 0): 1})

    def test_filter_unknown_attribute_raises_at_compile(self):
        with pytest.raises(ExpressionError):
            compile_filter(compare("Z", "=", 1), self.LAYOUT)

    def test_unknown_predicate_subclass_falls_back_to_evaluate(self):
        class OddA(Predicate):
            def evaluate(self, row):
                return row["A"] % 2 == 1

            def __str__(self):
                return "odd(A)"

        kernel = compile_filter(OddA(), self.LAYOUT)
        assert kernel({(1, 0): 1, (2, 0): 1, (3, 0): 2}) == {(1, 0): 1, (3, 0): 2}

    def test_projection_folds_multiplicities(self):
        out_layout, kernel = compile_projection(("A", "B"), ("B",))
        assert out_layout == ("B",)
        assert kernel({(1, 7): 2, (2, 7): 3, (3, 8): 1}) == {(7,): 5, (8,): 1}

    def test_projection_drops_cancelled_tuples(self):
        _, kernel = compile_projection(("A", "B"), ("B",))
        assert kernel({(1, 7): 2, (2, 7): -2}) == {}

    def test_projection_missing_attribute_raises(self):
        with pytest.raises(ExpressionError):
            compile_projection(("A", "B"), ("Z",))

    def test_merge_takes_shared_attributes_from_left(self):
        out_layout, merge = compile_merge(("A", "B"), ("B", "C"))
        assert out_layout == ("A", "B", "C")
        assert merge((1, 2), (2, 3)) == (1, 2, 3)

    def test_aggregate_kernel_counts_and_sums(self):
        expr = Aggregate(
            ("B",),
            (AggregateSpec("count", "n"), AggregateSpec("sum", "tot", "A")),
            BaseRelation("R"),
        )
        kernel = AggregateKernel(expr, ("A", "B"))
        out = kernel.aggregate({(1, 7): 2, (4, 7): 1, (5, 8): 1})
        # layout is sorted: (B, n, tot)
        assert kernel.layout == ("B", "n", "tot")
        assert out == {(7, 3, 6): 1, (8, 1, 5): 1}

    def test_aggregate_kernel_global_group(self):
        expr = Aggregate(
            (), (AggregateSpec("count", "n"),), BaseRelation("R")
        )
        kernel = AggregateKernel(expr, ("A", "B"))
        assert kernel.aggregate({(1, 2): 3, (4, 5): 2}) == {(5,): 1}

    def test_aggregate_kernel_dead_group_emits_nothing(self):
        expr = Aggregate(("B",), (AggregateSpec("count", "n"),), BaseRelation("R"))
        kernel = AggregateKernel(expr, ("A", "B"))
        assert kernel.aggregate({(1, 7): 1, (2, 7): -1}) == {}


class TestRelationFacade:
    def test_columnar_store_is_lazy_and_cached(self):
        rel = make_db().relation("R")
        store = rel.columnar()
        assert store is rel.columnar()
        assert store.to_rows() == dict(rel.counts_view())

    def test_store_tracks_insert_and_delete(self):
        rel = make_db().relation("R")
        store = rel.columnar()
        rel.insert(Row(A=99, B=0), 2)
        rel.delete(Row(A=0, B=0))
        assert store.to_rows() == dict(rel.counts_view())

    def test_clear_drops_store(self):
        rel = make_db().relation("R")
        first = rel.columnar()
        rel.replace_all([Row(A=7, B=7)])
        second = rel.columnar()
        assert second is not first
        assert second.to_rows() == {Row(A=7, B=7): 1}

    def test_copy_does_not_carry_store(self):
        rel = make_db().relation("R")
        rel.columnar()
        dup = rel.copy()
        dup.insert(Row(A=1, B=1))  # must not touch the original's store
        assert rel.columnar().to_rows() == dict(rel.counts_view())

    def test_schemaless_relation_has_no_columnar_store(self):
        rel = Relation(None, [Row(A=1)])
        with pytest.raises(RelationError):
            rel.columnar()

    def test_hash_index_positional_keys_match_name_keys(self):
        rel = make_db().relation("R")
        positional = rel.index_on(("B",))
        by_name = HashIndex(("B",))  # no layout: per-name lookups
        by_name.build(dict(rel.counts_view()))
        for key in by_name.keys():
            assert dict(positional.bucket(key)) == dict(by_name.bucket(key))


class TestEvaluateColumnar:
    EXPRS = [
        BaseRelation("R"),
        Select(compare("A", ">=", 6), BaseRelation("R")),
        Project(("B",), BaseRelation("R")),
        Join(BaseRelation("R"), BaseRelation("S")),
        Project(
            ("A", "C"),
            Select(compare("C", "<", 6), Join(BaseRelation("R"), BaseRelation("S"))),
        ),
        Aggregate(
            ("B",),
            (AggregateSpec("count", "n"), AggregateSpec("sum", "tot", "C")),
            Join(BaseRelation("R"), BaseRelation("S")),
        ),
    ]

    @pytest.mark.parametrize("expr", EXPRS, ids=[str(e) for e in EXPRS])
    def test_matches_row_dict_evaluate(self, expr):
        db = make_db()
        assert evaluate_columnar(expr, db) == evaluate(expr, db)

    def test_empty_database(self):
        db = Database()
        db.create_relation("R", Schema(["A", "B"]))
        db.create_relation("S", Schema(["B", "C"]))
        for expr in self.EXPRS:
            assert evaluate_columnar(expr, db) == evaluate(expr, db)


class TestPlanEngines:
    def test_default_engine_is_columnar(self):
        plan = MaintenancePlan(Join(BaseRelation("R"), BaseRelation("S")), make_db())
        assert plan.engine == "columnar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExpressionError):
            MaintenancePlan(BaseRelation("R"), make_db(), engine="simd")
        with pytest.raises(ExpressionError):
            PlanLibrary(make_db(), engine="simd")

    def test_plan_engine_must_match_library_engine(self):
        library = PlanLibrary(make_db(), engine="rows")
        with pytest.raises(ExpressionError):
            MaintenancePlan(BaseRelation("R"), library._db, library=library,
                            engine="columnar")

    def test_engines_describe_identically(self):
        expr = Aggregate(
            ("B",),
            (AggregateSpec("count", "n"), AggregateSpec("sum", "tot", "C")),
            Join(
                Select(compare("A", "<", 6), BaseRelation("R")),
                BaseRelation("S"),
            ),
        )
        columnar = MaintenancePlan(expr, make_db())
        rows = MaintenancePlan(expr, make_db(), engine="rows")
        assert columnar.describe() == rows.describe()

    def test_engines_emit_equal_deltas_over_a_batch_sequence(self):
        expr = Project(
            ("A", "C"),
            Select(compare("C", "<", 6), Join(BaseRelation("R"), BaseRelation("S"))),
        )
        db_c, db_r = make_db(), make_db()
        plan_c = MaintenancePlan(expr, db_c)
        plan_r = MaintenancePlan(expr, db_r, engine="rows")
        batches = [
            {"R": Delta.insert(Row(A=50, B=1))},
            {"S": Delta.insert(Row(B=1, C=2), 3)},
            {"R": Delta.delete(Row(A=0, B=0)),
             "S": Delta.delete(Row(B=0, C=0))},
        ]
        for deltas in batches:
            legacy = propagate_delta(expr, db_c, deltas)
            out_c, out_r = plan_c.propagate(deltas), plan_r.propagate(deltas)
            assert out_c == out_r == legacy
            db_c.apply_deltas(deltas)
            db_r.apply_deltas(deltas)
            plan_c.advance()
            plan_r.advance()

    def test_columnar_plan_survives_out_of_band_replace_all(self):
        """replace_all drops the columnar store; probes must re-resolve."""
        expr = Join(BaseRelation("R"), BaseRelation("S"))
        db = make_db()
        plan = MaintenancePlan(expr, db)
        plan.propagate({"R": Delta.insert(Row(A=77, B=1))})  # warm the probes
        db.relation("S").replace_all([Row(B=1, C=123)])
        plan.rebuild()
        deltas = {"R": Delta.insert(Row(A=78, B=1))}
        assert plan.propagate(deltas) == propagate_delta(expr, db, deltas)
