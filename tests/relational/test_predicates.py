"""Tests for selection predicates and the irrelevance restriction."""

import pytest

from repro.errors import ExpressionError
from repro.relational.predicates import (
    TRUE,
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    TruePredicate,
    compare,
    eq,
    satisfiable_on,
)
from repro.relational.rows import Row


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True), (">", False),
         (">=", False)],
    )
    def test_operators(self, op, expected):
        pred = Comparison(Attr("a"), op, Const(5))
        assert pred.evaluate(Row(a=3)) is expected

    def test_attr_vs_attr(self):
        assert eq("a", "b").evaluate(Row(a=1, b=1))
        assert not eq("a", "b").evaluate(Row(a=1, b=2))

    def test_string_literal_via_const(self):
        pred = Comparison(Attr("name"), "=", Const("x"))
        assert pred.evaluate(Row(name="x"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison(Attr("a"), "~", Const(1))

    def test_missing_attribute_raises(self):
        with pytest.raises(ExpressionError):
            eq("z", 1).evaluate(Row(a=1))

    def test_incomparable_types_raise(self):
        with pytest.raises(ExpressionError):
            compare("a", "<", Const("text")).evaluate(Row(a=1))

    def test_attributes(self):
        assert eq("a", "b").attributes() == frozenset({"a", "b"})
        assert eq("a", 5).attributes() == frozenset({"a"})


class TestCombinators:
    def test_and_or_not(self):
        pred = (eq("a", 1) & eq("b", 2)) | ~eq("c", 3)
        assert pred.evaluate(Row(a=1, b=2, c=3))
        assert pred.evaluate(Row(a=0, b=0, c=0))
        assert not pred.evaluate(Row(a=0, b=2, c=3))

    def test_true_predicate(self):
        assert TRUE.evaluate(Row(a=1))
        assert TRUE.attributes() == frozenset()

    def test_str_renderings(self):
        assert "and" in str(eq("a", 1) & eq("b", 2))
        assert "or" in str(eq("a", 1) | eq("b", 2))
        assert "not" in str(~eq("a", 1))


class TestRestriction:
    """restrict_to must be a sound weakening (used for irrelevance tests)."""

    def test_fully_covered_comparison_kept(self):
        pred = eq("a", 1).restrict_to(frozenset({"a"}))
        assert pred == eq("a", 1)

    def test_uncovered_comparison_weakens_to_true(self):
        pred = eq("b", 1).restrict_to(frozenset({"a"}))
        assert isinstance(pred, TruePredicate)

    def test_and_keeps_covered_conjunct(self):
        pred = (eq("a", 1) & eq("b", 2)).restrict_to(frozenset({"a"}))
        assert pred == eq("a", 1)

    def test_or_with_uncovered_branch_weakens_fully(self):
        pred = (eq("a", 1) | eq("b", 2)).restrict_to(frozenset({"a"}))
        assert isinstance(pred, TruePredicate)

    def test_or_fully_covered_kept(self):
        original = eq("a", 1) | eq("a", 2)
        assert original.restrict_to(frozenset({"a"})) == original

    def test_not_kept_only_if_fully_covered(self):
        assert (~eq("a", 1)).restrict_to(frozenset({"a"})) == ~eq("a", 1)
        assert isinstance((~eq("b", 1)).restrict_to(frozenset({"a"})), TruePredicate)

    def test_soundness_on_extensions(self):
        """If the restriction rejects a partial row, no extension passes."""
        pred = compare("a", ">", 5) & eq("b", 1)
        restricted = pred.restrict_to(frozenset({"a"}))
        partial = Row(a=3)
        assert not restricted.evaluate(partial)
        for b in range(3):
            assert not pred.evaluate(Row(a=3, b=b))

    def test_satisfiable_on(self):
        pred = compare("qty", ">=", 10)
        assert not satisfiable_on(pred, Row(qty=3), frozenset({"qty"}))
        assert satisfiable_on(pred, Row(qty=12), frozenset({"qty"}))

    def test_satisfiable_on_foreign_attrs_conservative(self):
        pred = compare("other", ">=", 10)
        # Cannot decide on qty alone; must conservatively say satisfiable.
        assert satisfiable_on(pred, Row(qty=3), frozenset({"qty"}))


class TestConvenience:
    def test_compare_coerces_names_and_values(self):
        pred = compare("a", "=", 5)
        assert pred.lhs == Attr("a")
        assert pred.rhs == Const(5)

    def test_compare_string_identifier_becomes_attr(self):
        pred = compare("a", "=", "b")
        assert pred.rhs == Attr("b")

    def test_compare_nonidentifier_string_becomes_const(self):
        pred = compare("a", "=", "hello world")
        assert pred.rhs == Const("hello world")
