"""Property-based tests: incremental deltas must equal recomputation.

For ANY select-project-join expression over R(A,B), S(B,C) and ANY batch
of base updates, applying the propagated view delta to the old view must
yield exactly the recomputed new view.  This is the correctness contract
every view manager relies on.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema

VALUES = st.integers(min_value=0, max_value=4)


def rows_for(names: tuple[str, ...]):
    return st.builds(
        lambda vals: Row(dict(zip(names, vals))),
        st.tuples(*([VALUES] * len(names))),
    )


def relation_contents(names: tuple[str, ...]):
    return st.lists(rows_for(names), max_size=6)


@st.composite
def databases(draw) -> Database:
    db = Database()
    db.create_relation("R", Schema(["A", "B"]), draw(relation_contents(("A", "B"))))
    db.create_relation("S", Schema(["B", "C"]), draw(relation_contents(("B", "C"))))
    return db


@st.composite
def expressions(draw) -> Expression:
    """A random SPJ expression over R and S."""
    base = draw(
        st.sampled_from(
            [
                BaseRelation("R"),
                BaseRelation("S"),
                Join(BaseRelation("R"), BaseRelation("S")),
            ]
        )
    )
    expr: Expression = base
    if draw(st.booleans()):
        attr = draw(st.sampled_from(["A", "B"] if "R" in expr.base_relations() else ["B", "C"]))
        op = draw(st.sampled_from(["=", "<", ">=", "!="]))
        expr = Select(compare(attr, op, draw(VALUES)), expr)
    if draw(st.booleans()):
        schema = expr.infer_schema(
            {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
        )
        names = list(schema.names)
        keep = draw(st.integers(min_value=1, max_value=len(names)))
        expr = Project(tuple(names[:keep]), expr)
    return expr


@st.composite
def base_deltas(draw, db: Database):
    """Random applicable deltas: inserts anywhere, deletes of live rows."""
    deltas: dict[str, Delta] = {}
    for name, attrs in (("R", ("A", "B")), ("S", ("B", "C"))):
        counts: dict[Row, int] = {}
        for row in draw(st.lists(rows_for(attrs), max_size=3)):
            counts[row] = counts.get(row, 0) + 1
        live = list(db.relation(name))
        if live:
            victims = draw(
                st.lists(st.sampled_from(live), max_size=min(3, len(live)))
            )
            # Delete at most the available multiplicity of each row.
            budget: dict[Row, int] = {}
            for victim in victims:
                budget[victim] = budget.get(victim, 0) + 1
            for row, wanted in budget.items():
                available = db.relation(name).multiplicity(row) + counts.get(row, 0)
                take = min(wanted, available)
                if take:
                    counts[row] = counts.get(row, 0) - take
        if counts:
            deltas[name] = Delta(counts)
    return deltas


@given(data=st.data())
@settings(max_examples=150, deadline=None)
def test_incremental_equals_recomputation(data):
    db = data.draw(databases())
    expr = data.draw(expressions())
    deltas = data.draw(base_deltas(db))

    view_before = evaluate(expr, db)
    view_delta = propagate_delta(expr, db, deltas)

    db.apply_deltas(deltas)
    view_after = evaluate(expr, db)

    materialized = view_before.copy()
    view_delta.apply_to(materialized)
    assert materialized == view_after


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_delta_composition(data):
    """Applying d1 then d2 equals applying d1.combined(d2)."""
    db = data.draw(databases())
    expr = data.draw(expressions())
    d1 = data.draw(base_deltas(db))

    view0 = evaluate(expr, db)
    vd1 = propagate_delta(expr, db, d1)
    db.apply_deltas(d1)

    d2 = data.draw(base_deltas(db))
    vd2 = propagate_delta(expr, db, d2)
    db.apply_deltas(d2)
    final = evaluate(expr, db)

    stepwise = view0.copy()
    vd1.apply_to(stepwise)
    vd2.apply_to(stepwise)
    assert stepwise == final

    combined = view0.copy()
    vd1.combined(vd2).apply_to(combined)
    assert combined == final


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_negated_delta_undoes(data):
    db = data.draw(databases())
    expr = data.draw(expressions())
    deltas = data.draw(base_deltas(db))
    before = evaluate(expr, db)
    view_delta = propagate_delta(expr, db, deltas)
    roundtrip = before.copy()
    view_delta.apply_to(roundtrip)
    view_delta.negated().apply_to(roundtrip)
    assert roundtrip == before
