"""Hash indexes: lazy build, incremental maintenance, zero-copy reads."""

import pytest

from repro.errors import RelationError
from repro.relational.indexes import HashIndex
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


class TestHashIndex:
    def test_build_and_probe(self):
        index = HashIndex(("b",))
        index.build({Row(a=1, b=10): 2, Row(a=2, b=10): 1, Row(a=3, b=20): 1})
        assert dict(index.bucket((10,))) == {Row(a=1, b=10): 2, Row(a=2, b=10): 1}
        assert dict(index.bucket((20,))) == {Row(a=3, b=20): 1}
        assert dict(index.bucket((99,))) == {}
        assert len(index) == 2

    def test_add_remove_round_trip(self):
        index = HashIndex(("b",))
        index.add(Row(a=1, b=10), 3)
        index.remove(Row(a=1, b=10), 2)
        assert dict(index.bucket((10,))) == {Row(a=1, b=10): 1}
        index.remove(Row(a=1, b=10), 1)
        assert len(index) == 0  # empty buckets are dropped

    def test_compound_key(self):
        index = HashIndex(("a", "b"))
        index.add(Row(a=1, b=2, c=3), 1)
        assert dict(index.bucket((1, 2))) == {Row(a=1, b=2, c=3): 1}

    def test_empty_key_is_one_bucket(self):
        # An empty attribute list (cross product probe) buckets everything.
        index = HashIndex(())
        index.add(Row(a=1), 1)
        index.add(Row(a=2), 2)
        assert dict(index.bucket(())) == {Row(a=1): 1, Row(a=2): 2}


class TestRelationIndexes:
    def make(self):
        return Relation(
            Schema(["A", "B"]),
            [Row(A=i, B=i % 3) for i in range(9)],
        )

    def test_lazy_build_and_identity(self):
        rel = self.make()
        index = rel.index_on(("B",))
        assert rel.index_on(("B",)) is index  # registered, not rebuilt
        assert dict(index.bucket((0,))) == {
            Row(A=0, B=0): 1, Row(A=3, B=0): 1, Row(A=6, B=0): 1
        }

    def test_maintained_through_insert_delete(self):
        rel = self.make()
        index = rel.index_on(("B",))
        rel.insert(Row(A=100, B=0))
        rel.delete(Row(A=0, B=0))
        assert dict(index.bucket((0,))) == {
            Row(A=3, B=0): 1, Row(A=6, B=0): 1, Row(A=100, B=0): 1
        }

    def test_multiplicity_tracked(self):
        rel = self.make()
        index = rel.index_on(("B",))
        rel.insert(Row(A=3, B=0), 4)
        assert index.bucket((0,))[Row(A=3, B=0)] == 5

    def test_modify_keeps_index_consistent(self):
        rel = self.make()
        index = rel.index_on(("B",))
        rel.modify(Row(A=1, B=1), Row(A=1, B=2))
        assert Row(A=1, B=1) not in index.bucket((1,))
        assert index.bucket((2,))[Row(A=1, B=2)] == 1

    def test_clear_drops_indexes(self):
        rel = self.make()
        rel.index_on(("B",))
        rel.clear()
        rel.insert(Row(A=1, B=0))
        # A fresh probe sees only the post-clear contents.
        assert dict(rel.index_on(("B",)).bucket((0,))) == {Row(A=1, B=0): 1}

    def test_replace_all_rebuilds(self):
        rel = self.make()
        rel.index_on(("B",))
        rel.replace_all([Row(A=50, B=7)])
        assert dict(rel.index_on(("B",)).bucket((7,))) == {Row(A=50, B=7): 1}

    def test_copy_does_not_share_indexes(self):
        rel = self.make()
        rel.index_on(("B",))
        dup = rel.copy()
        dup.insert(Row(A=200, B=0))
        assert Row(A=200, B=0) not in rel.index_on(("B",)).bucket((0,))
        assert Row(A=200, B=0) in dup.index_on(("B",)).bucket((0,))

    def test_counts_view_is_zero_copy_and_readonly(self):
        rel = self.make()
        view = rel.counts_view()
        assert view[Row(A=0, B=0)] == 1
        rel.insert(Row(A=99, B=0))
        assert view[Row(A=99, B=0)] == 1  # live view
        with pytest.raises(TypeError):
            view[Row(A=5, B=5)] = 3  # type: ignore[index]

    def test_delete_underflow_leaves_index_intact(self):
        rel = self.make()
        index = rel.index_on(("B",))
        with pytest.raises(RelationError):
            rel.delete(Row(A=0, B=0), 5)
        assert index.bucket((0,))[Row(A=0, B=0)] == 1
