"""Compiled maintenance plans: equivalence, aux state, and wiring.

The plan path must be observably *used* (indexed probes, aux
materializations, self-maintained aggregates) while staying bag-for-bag
identical to both the unindexed delta rules and full recomputation.
"""

import pytest

from repro.errors import ConsistencyViolation
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.maintain import MaterializedView
from repro.relational.plan import MaintenancePlan, PlanUnsupported
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema


def make_db() -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i % 4) for i in range(12)]
    )
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=i % 4, C=i) for i in range(8)]
    )
    return db


JOIN = Join(BaseRelation("R"), BaseRelation("S"))
SPJ = Project(("A", "C"), Select(compare("C", "<", 6), JOIN))
TOTALS = Aggregate(
    ("B",),
    (AggregateSpec("count", "n"), AggregateSpec("sum", "total", "C")),
    JOIN,
)


def check_sequence(expr: Expression, db: Database, delta_batches) -> MaintenancePlan:
    """Drive ``expr`` through plan + legacy + recompute; all must agree."""
    plan = MaintenancePlan(expr, db)
    materialized = evaluate(expr, db)
    for deltas in delta_batches:
        legacy = propagate_delta(expr, db, deltas)
        planned = plan.propagate(deltas)
        assert planned == legacy
        db.apply_deltas(deltas)
        plan.advance()
        planned.apply_to(materialized)
        assert materialized == evaluate(expr, db)
    return plan


class TestPlanEquivalence:
    def test_join_insert_delete_modify(self):
        db = make_db()
        check_sequence(
            JOIN,
            db,
            [
                {"R": Delta.insert(Row(A=50, B=1))},
                {"S": Delta.insert(Row(B=1, C=99), 3)},
                {"R": Delta.modify(Row(A=50, B=1), Row(A=50, B=2))},
                {"R": Delta.delete(Row(A=0, B=0)),
                 "S": Delta.delete(Row(B=0, C=0))},
            ],
        )

    def test_spj_pushes_delta_through_select_project(self):
        db = make_db()
        check_sequence(
            SPJ,
            db,
            [
                {"S": Delta.insert(Row(B=2, C=3))},     # passes the filter
                {"S": Delta.insert(Row(B=2, C=300))},   # rejected by it
                {"R": Delta.insert(Row(A=7, B=2), 2)},
            ],
        )

    def test_aggregate_group_birth_change_death(self):
        db = make_db()
        check_sequence(
            TOTALS,
            db,
            [
                {"S": Delta.insert(Row(B=1, C=10))},            # value change
                {"R": Delta.insert(Row(A=60, B=9))},            # joins nothing
                {"S": Delta.insert(Row(B=9, C=1))},             # group birth
                {"S": Delta.delete(Row(B=9, C=1))},             # group death
                {"R": Delta.modify(Row(A=1, B=1), Row(A=1, B=3))},
            ],
        )

    def test_aggregate_without_group_by(self):
        grand = Aggregate((), (AggregateSpec("sum", "total", "C"),), JOIN)
        db = make_db()
        check_sequence(
            grand,
            db,
            [
                {"S": Delta.insert(Row(B=0, C=5))},
                {"S": Delta.delete(Row(B=0, C=5))},
            ],
        )

    def test_derived_join_input_is_materialized(self):
        # Join of two *derived* sides: both must become aux materializations.
        expr = Join(
            Project(("A", "B"), Select(compare("A", ">=", 2), BaseRelation("R"))),
            Select(compare("C", "!=", 3), BaseRelation("S")),
        )
        db = make_db()
        plan = check_sequence(
            expr,
            db,
            [
                {"R": Delta.insert(Row(A=1, B=1))},   # filtered out of the aux
                {"R": Delta.insert(Row(A=30, B=1))},
                {"S": Delta.insert(Row(B=1, C=3))},   # filtered out of the aux
                {"S": Delta.insert(Row(B=1, C=4))},
            ],
        )
        assert plan.describe().count("aux materialization") == 2

    def test_aggregate_as_join_input(self):
        # The aggregate output feeds a join: aux-materialized and probed.
        per_b = Aggregate(("B",), (AggregateSpec("count", "n"),), BaseRelation("R"))
        expr = Join(per_b, BaseRelation("S"))
        db = make_db()
        plan = check_sequence(
            expr,
            db,
            [
                {"R": Delta.insert(Row(A=70, B=0))},
                {"R": Delta.delete(Row(A=0, B=0))},
                {"S": Delta.insert(Row(B=0, C=55))},
            ],
        )
        assert "aux materialization" in plan.describe()


class TestPlanMechanics:
    def test_propagate_is_pure_until_advance(self):
        db = make_db()
        plan = MaintenancePlan(JOIN, db)
        deltas = {"R": Delta.insert(Row(A=50, B=1))}
        first = plan.propagate(deltas)
        assert plan.propagate(deltas) == first  # no hidden state advanced

    def test_abandoned_batch_is_superseded(self):
        db = make_db()
        plan = MaintenancePlan(TOTALS, db)
        plan.propagate({"R": Delta.insert(Row(A=50, B=1))})  # never advanced
        deltas = {"S": Delta.insert(Row(B=1, C=10))}
        assert plan.propagate(deltas) == propagate_delta(TOTALS, db, deltas)

    def test_rebuild_recovers_from_out_of_band_mutation(self):
        db = make_db()
        expr = Join(Select(compare("A", ">=", 0), BaseRelation("R")),
                    BaseRelation("S"))
        plan = MaintenancePlan(expr, db)
        db.apply_deltas({"R": Delta.insert(Row(A=80, B=1))})  # behind its back
        plan.rebuild()
        deltas = {"S": Delta.insert(Row(B=1, C=42))}
        assert plan.propagate(deltas) == propagate_delta(expr, db, deltas)

    def test_unsupported_expression_raises(self):
        class Exotic(Expression):
            __slots__ = ()

            def base_relations(self):
                return frozenset()

            def infer_schema(self, base_schemas):
                return Schema(["A"])

        with pytest.raises(PlanUnsupported):
            MaintenancePlan(Exotic(), make_db())

    def test_schema_cached_at_compile(self):
        db = make_db()
        plan = MaintenancePlan(SPJ, db)
        assert plan.schema.names == ("A", "C")


class TestMaterializedViewPlan:
    def test_plan_used_by_default_and_verifies(self):
        db = make_db()
        view = MaterializedView(ViewDefinition("V", TOTALS), db)
        assert view.plan is not None
        view.apply({"S": Delta.insert(Row(B=1, C=10))})
        view.apply({"R": Delta.delete(Row(A=1, B=1))})
        assert view.plan.propagations == 2
        view.verify()

    def test_opt_out_matches_plan_path(self):
        db_a, db_b = make_db(), make_db()
        planned = MaterializedView(ViewDefinition("V", SPJ), db_a)
        legacy = MaterializedView(ViewDefinition("V", SPJ), db_b, use_plan=False)
        assert legacy.plan is None
        for deltas in (
            {"R": Delta.insert(Row(A=21, B=3))},
            {"S": Delta.insert(Row(B=3, C=2))},
        ):
            assert planned.apply(deltas) == legacy.apply(deltas)
        assert planned.contents == legacy.contents

    def test_refresh_rebuilds_plan_state(self):
        db = make_db()
        view = MaterializedView(ViewDefinition("V", JOIN), db)
        db.apply_deltas({"R": Delta.insert(Row(A=90, B=2))})  # out-of-band
        with pytest.raises(ConsistencyViolation):
            view.verify()
        view.refresh()
        view.verify()
        view.apply({"S": Delta.insert(Row(B=2, C=77))})
        view.verify()

    def test_failed_apply_leaves_everything_untouched(self):
        db = make_db()
        view = MaterializedView(ViewDefinition("V", JOIN), db)
        before = view.contents.copy()
        bad = {
            "R": Delta.insert(Row(A=91, B=1)),
            "S": Delta.delete(Row(B=0, C=0), 5),  # underflows
        }
        with pytest.raises(Exception):
            view.apply(bad)
        assert view.contents == before
        view.verify()  # db also untouched: atomic apply_deltas
        view.apply({"R": Delta.insert(Row(A=91, B=1))})
        view.verify()


class TestCachedManagerUsesPlan:
    def test_seed_replica_compiles_plan(self):
        from repro.sim.kernel import Simulator
        from repro.viewmgr.complete import CompleteViewManager

        schemas = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
        db = Database()
        db.create_relation("R", schemas["R"], [Row(A=1, B=2)])
        db.create_relation("S", schemas["S"])
        manager = CompleteViewManager(
            Simulator(), ViewDefinition("V", JOIN), schemas
        )
        manager.seed_replica(db)
        assert manager._plan is not None
        assert manager._plan.propagations == 0
