"""Tests for full expression evaluation."""

import pytest

from repro.relational.algebra import evaluate, join_counts
from repro.relational.database import Database
from repro.relational.expressions import BaseRelation, Join, Project, Select
from repro.relational.parser import parse_view
from repro.relational.predicates import compare, eq
from repro.relational.rows import Row
from repro.relational.schema import Schema


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=1, B=2), Row(A=7, B=2), Row(A=9, B=5)]
    )
    db.create_relation("S", Schema(["B", "C"]), [Row(B=2, C=3), Row(B=5, C=6)])
    return db


class TestEvaluate:
    def test_base(self, db):
        assert len(evaluate(BaseRelation("R"), db)) == 3

    def test_select(self, db):
        result = evaluate(Select(eq("B", 2), BaseRelation("R")), db)
        assert result.sorted_rows() == [Row(A=1, B=2), Row(A=7, B=2)]

    def test_project_preserves_duplicates(self, db):
        result = evaluate(Project(("B",), BaseRelation("R")), db)
        assert result.sorted_rows() == [Row(B=2), Row(B=2), Row(B=5)]

    def test_natural_join(self, db):
        result = evaluate(Join(BaseRelation("R"), BaseRelation("S")), db)
        assert result.sorted_rows() == [
            Row(A=1, B=2, C=3),
            Row(A=7, B=2, C=3),
            Row(A=9, B=5, C=6),
        ]

    def test_join_multiplicity_multiplies(self):
        db = Database()
        db.create_relation("L", Schema(["k"]), [Row(k=1), Row(k=1)])
        db.create_relation("Rt", Schema(["k"]), [Row(k=1), Row(k=1), Row(k=1)])
        result = evaluate(Join(BaseRelation("L"), BaseRelation("Rt")), db)
        assert len(result) == 6

    def test_cross_product(self, db):
        db2 = Database()
        db2.create_relation("X", Schema(["x"]), [Row(x=1), Row(x=2)])
        db2.create_relation("Y", Schema(["y"]), [Row(y=10)])
        result = evaluate(Join(BaseRelation("X"), BaseRelation("Y")), db2)
        assert result.sorted_rows() == [Row(x=1, y=10), Row(x=2, y=10)]

    def test_composite_query(self, db):
        view = parse_view("V = SELECT A, C FROM R JOIN S WHERE A >= 7")
        result = evaluate(view.expression, db)
        assert result.sorted_rows() == [Row(A=7, C=3), Row(A=9, C=6)]

    def test_empty_operand_yields_empty_join(self, db):
        db.create_relation("E", Schema(["B", "Z"]))
        result = evaluate(Join(BaseRelation("R"), BaseRelation("E")), db)
        assert not result

    def test_result_schema(self, db):
        result = evaluate(Join(BaseRelation("R"), BaseRelation("S")), db)
        assert result.schema is not None
        assert result.schema.names == ("A", "B", "C")

    def test_evaluate_on_snapshot(self, db):
        snapshot = db.snapshot()
        result = evaluate(Select(compare("A", ">", 5), BaseRelation("R")), snapshot)
        assert len(result) == 2


class TestJoinCounts:
    def test_signed_counts_multiply(self):
        left = {Row(k=1, a=1): -1}
        right = {Row(k=1, b=1): 2}
        out = join_counts(left, right, ("k",))
        assert out == {Row(k=1, a=1, b=1): -2}

    def test_zero_products_dropped(self):
        left = {Row(k=1): 1, Row(k=2): 1}
        right = {Row(k=3): 5}
        assert join_counts(left, right, ("k",)) == {}

    def test_build_side_choice_does_not_change_result(self):
        small = {Row(k=1, a=1): 2}
        large = {Row(k=1, b=i): 1 for i in range(5)}
        forward = join_counts(small, large, ("k",))
        backward = join_counts(large, small, ("k",))
        assert forward == backward
        assert sum(forward.values()) == 10
