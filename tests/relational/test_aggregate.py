"""Tests for aggregate views: evaluation, deltas, parsing, rendering."""

import pytest

from repro.errors import ExpressionError, ParseError
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import Aggregate, AggregateSpec, BaseRelation, Join
from repro.relational.parser import parse_view
from repro.relational.render import to_sql
from repro.relational.rows import Row
from repro.relational.schema import Attribute, AttrType, Schema


def sales_db() -> Database:
    db = Database()
    db.create_relation(
        "Sales",
        Schema(["region", "qty"]),
        [
            Row(region=1, qty=10),
            Row(region=1, qty=5),
            Row(region=2, qty=7),
        ],
    )
    return db


TOTALS = Aggregate(
    ("region",),
    (AggregateSpec("count", "n"), AggregateSpec("sum", "total", "qty")),
    BaseRelation("Sales"),
)


class TestSpecValidation:
    def test_unknown_function(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("avg", "a", "x")

    def test_sum_needs_attr(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("sum", "a")

    def test_count_takes_no_attr(self):
        with pytest.raises(ExpressionError):
            AggregateSpec("count", "a", "x")

    def test_needs_aggregates(self):
        with pytest.raises(ExpressionError):
            Aggregate(("g",), (), BaseRelation("Sales"))

    def test_duplicate_output_columns(self):
        with pytest.raises(ExpressionError):
            Aggregate(
                ("region",),
                (AggregateSpec("count", "region"),),
                BaseRelation("Sales"),
            )


class TestSchema:
    def test_output_schema(self):
        schema = TOTALS.infer_schema({"Sales": Schema(["region", "qty"])})
        assert schema.names == ("region", "n", "total")
        assert schema["n"].type is AttrType.INT

    def test_sum_over_float(self):
        schemas = {
            "M": Schema([Attribute("g"), Attribute("x", AttrType.FLOAT)])
        }
        agg = Aggregate(("g",), (AggregateSpec("sum", "s", "x"),), BaseRelation("M"))
        assert agg.infer_schema(schemas)["s"].type is AttrType.FLOAT

    def test_sum_over_string_rejected(self):
        schemas = {"M": Schema([Attribute("g"), Attribute("x", AttrType.STR)])}
        agg = Aggregate(("g",), (AggregateSpec("sum", "s", "x"),), BaseRelation("M"))
        with pytest.raises(ExpressionError, match="numeric"):
            agg.infer_schema(schemas)

    def test_unknown_group_by(self):
        agg = Aggregate(("z",), (AggregateSpec("count", "n"),), BaseRelation("Sales"))
        with pytest.raises(ExpressionError):
            agg.infer_schema({"Sales": Schema(["region", "qty"])})


class TestEvaluation:
    def test_group_by(self):
        result = evaluate(TOTALS, sales_db())
        assert sorted(result, key=lambda r: r["region"]) == [
            Row(region=1, n=2, total=15),
            Row(region=2, n=1, total=7),
        ]

    def test_multiplicities_counted(self):
        db = Database()
        db.create_relation("Sales", Schema(["region", "qty"]))
        db.relation("Sales").insert(Row(region=1, qty=3), count=4)
        result = evaluate(TOTALS, db)
        assert result.sorted_rows() == [Row(region=1, n=4, total=12)]

    def test_global_aggregate_over_empty_is_empty(self):
        db = Database()
        db.create_relation("Sales", Schema(["region", "qty"]))
        agg = Aggregate((), (AggregateSpec("count", "n"),), BaseRelation("Sales"))
        assert len(evaluate(agg, db)) == 0

    def test_aggregate_over_join(self):
        db = sales_db()
        db.create_relation("Region", Schema(["region", "zone"]),
                           [Row(region=1, zone=9), Row(region=2, zone=9)])
        agg = Aggregate(
            ("zone",),
            (AggregateSpec("sum", "total", "qty"),),
            Join(BaseRelation("Sales"), BaseRelation("Region")),
        )
        assert evaluate(agg, db).sorted_rows() == [Row(zone=9, total=22)]


class TestDeltas:
    def _check(self, deltas):
        db = sales_db()
        before = evaluate(TOTALS, db)
        view_delta = propagate_delta(TOTALS, db, deltas)
        db.apply_deltas(deltas)
        after = evaluate(TOTALS, db)
        materialized = before.copy()
        view_delta.apply_to(materialized)
        assert materialized == after
        return view_delta

    def test_insert_into_existing_group(self):
        delta = self._check({"Sales": Delta.insert(Row(region=1, qty=1))})
        assert delta.count(Row(region=1, n=2, total=15)) == -1
        assert delta.count(Row(region=1, n=3, total=16)) == 1

    def test_group_birth(self):
        delta = self._check({"Sales": Delta.insert(Row(region=5, qty=2))})
        assert delta.count(Row(region=5, n=1, total=2)) == 1

    def test_group_death(self):
        delta = self._check({"Sales": Delta.delete(Row(region=2, qty=7))})
        assert delta.count(Row(region=2, n=1, total=7)) == -1
        assert len(delta) == 1

    def test_value_change_same_count(self):
        delta = self._check(
            {"Sales": Delta.modify(Row(region=2, qty=7), Row(region=2, qty=9))}
        )
        assert delta.count(Row(region=2, n=1, total=7)) == -1
        assert delta.count(Row(region=2, n=1, total=9)) == 1

    def test_untouched_groups_absent_from_delta(self):
        delta = self._check({"Sales": Delta.insert(Row(region=2, qty=1))})
        assert all(row["region"] == 2 for row in delta.counts())

    def test_empty_delta(self):
        delta = propagate_delta(TOTALS, sales_db(), {})
        assert delta.is_empty()


class TestParsing:
    def test_group_by_query(self):
        view = parse_view(
            "T = SELECT region, count(*) AS n, sum(qty) AS total "
            "FROM Sales GROUP BY region"
        )
        assert view.expression == TOTALS

    def test_implicit_group_by(self):
        view = parse_view("T = SELECT region, count(*) AS n FROM Sales")
        assert isinstance(view.expression, Aggregate)
        assert view.expression.group_by == ("region",)

    def test_default_aliases(self):
        view = parse_view("T = SELECT region, count(*), sum(qty) FROM Sales")
        aliases = [a.alias for a in view.expression.aggregates]
        assert aliases == ["count", "sum_qty"]

    def test_interleaved_select_list_reorders_with_project(self):
        view = parse_view(
            "T = SELECT sum(qty) AS total, region FROM Sales GROUP BY region"
        )
        from repro.relational.expressions import Project

        assert isinstance(view.expression, Project)
        assert view.expression.names == ("total", "region")

    def test_where_applies_below_aggregation(self):
        view = parse_view(
            "T = SELECT region, sum(qty) AS total FROM Sales "
            "WHERE qty >= 6 GROUP BY region"
        )
        result = evaluate(view.expression, sales_db())
        assert result.sorted_rows() == [
            Row(region=1, total=10),
            Row(region=2, total=7),
        ]

    def test_group_by_mismatch_rejected(self):
        with pytest.raises(ParseError, match="must match"):
            parse_view(
                "T = SELECT region, count(*) AS n FROM Sales GROUP BY qty"
            )

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(ParseError):
            parse_view("T = SELECT region FROM Sales GROUP BY region")

    def test_group_by_with_star_rejected(self):
        with pytest.raises(ParseError):
            parse_view("T = SELECT * FROM Sales GROUP BY region")


class TestHaving:
    def test_having_filters_groups(self):
        view = parse_view(
            "T = SELECT region, count(*) AS n FROM Sales "
            "GROUP BY region HAVING n >= 2"
        )
        result = evaluate(view.expression, sales_db())
        assert result.sorted_rows() == [Row(n=2, region=1)]

    def test_having_requires_group_by(self):
        with pytest.raises(ParseError, match="GROUP BY"):
            parse_view("T = SELECT region, count(*) AS n FROM Sales HAVING n >= 2")

    def test_having_round_trips(self):
        text = ("T = SELECT region, sum(qty) AS total FROM Sales "
                "GROUP BY region HAVING total > 10")
        view = parse_view(text)
        assert parse_view(to_sql(view)) == view

    def test_having_incremental_maintenance(self):
        view = parse_view(
            "T = SELECT region, count(*) AS n FROM Sales "
            "GROUP BY region HAVING n >= 2"
        )
        db = sales_db()
        before = evaluate(view.expression, db)
        deltas = {"Sales": Delta.insert(Row(region=2, qty=1))}
        delta = propagate_delta(view.expression, db, deltas)
        db.apply_deltas(deltas)
        after = evaluate(view.expression, db)
        materialized = before.copy()
        delta.apply_to(materialized)
        assert materialized == after
        # Region 2 just crossed the HAVING threshold: it appears.
        assert Row(region=2, n=2) in after

    def test_having_with_reordered_select_list(self):
        view = parse_view(
            "T = SELECT sum(qty) AS total, region FROM Sales "
            "GROUP BY region HAVING total >= 15"
        )
        result = evaluate(view.expression, sales_db())
        assert result.sorted_rows() == [Row(region=1, total=15)]


class TestRendering:
    def test_round_trip(self):
        text = (
            "T = SELECT region, count(*) AS n, sum(qty) AS total "
            "FROM Sales WHERE qty >= 2 GROUP BY region"
        )
        view = parse_view(text)
        again = parse_view(to_sql(view))
        assert again == view
