"""Tests for multiset relations."""

import pytest

from repro.errors import RelationError, SchemaError
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


@pytest.fixture
def rel() -> Relation:
    return Relation(Schema(["a", "b"]))


class TestBasics:
    def test_empty(self, rel):
        assert len(rel) == 0
        assert not rel

    def test_insert_and_len(self, rel):
        rel.insert(Row(a=1, b=2))
        rel.insert(Row(a=1, b=2))
        assert len(rel) == 2
        assert rel.distinct_count() == 1

    def test_insert_mapping_coerced(self, rel):
        rel.insert({"a": 1, "b": 2})
        assert Row(a=1, b=2) in rel

    def test_insert_with_count(self, rel):
        rel.insert(Row(a=1, b=2), count=3)
        assert rel.multiplicity(Row(a=1, b=2)) == 3

    def test_insert_bad_count(self, rel):
        with pytest.raises(RelationError):
            rel.insert(Row(a=1, b=2), count=0)

    def test_schema_validation(self, rel):
        with pytest.raises(SchemaError):
            rel.insert(Row(a=1))

    def test_schemaless_relation_accepts_anything(self):
        rel = Relation()
        rel.insert(Row(x=1))
        rel.insert(Row(y=2))
        assert len(rel) == 2

    def test_iteration_respects_multiplicity(self, rel):
        rel.insert(Row(a=1, b=2), count=2)
        assert sum(1 for _ in rel) == 2


class TestDelete:
    def test_delete(self, rel):
        rel.insert(Row(a=1, b=2), count=2)
        rel.delete(Row(a=1, b=2))
        assert rel.multiplicity(Row(a=1, b=2)) == 1

    def test_delete_last_copy_removes_row(self, rel):
        rel.insert(Row(a=1, b=2))
        rel.delete(Row(a=1, b=2))
        assert Row(a=1, b=2) not in rel

    def test_delete_absent_raises(self, rel):
        with pytest.raises(RelationError, match="only 0 present"):
            rel.delete(Row(a=1, b=2))

    def test_delete_more_than_present_raises(self, rel):
        rel.insert(Row(a=1, b=2))
        with pytest.raises(RelationError):
            rel.delete(Row(a=1, b=2), count=2)


class TestModify:
    def test_modify(self, rel):
        rel.insert(Row(a=1, b=2))
        rel.modify(Row(a=1, b=2), Row(a=1, b=9))
        assert Row(a=1, b=9) in rel
        assert Row(a=1, b=2) not in rel

    def test_modify_rolls_back_on_bad_new_row(self, rel):
        rel.insert(Row(a=1, b=2))
        with pytest.raises(SchemaError):
            rel.modify(Row(a=1, b=2), Row(a=1))
        assert Row(a=1, b=2) in rel  # rollback kept the old row


class TestEqualityAndCopy:
    def test_bag_equality(self):
        left = Relation(rows=[Row(a=1), Row(a=1), Row(a=2)])
        right = Relation(rows=[Row(a=2), Row(a=1), Row(a=1)])
        assert left == right

    def test_bag_inequality_on_counts(self):
        left = Relation(rows=[Row(a=1)])
        right = Relation(rows=[Row(a=1), Row(a=1)])
        assert left != right

    def test_copy_is_independent(self):
        original = Relation(rows=[Row(a=1)])
        dup = original.copy()
        dup.insert(Row(a=2))
        assert len(original) == 1
        assert len(dup) == 2

    def test_from_counts(self):
        rel = Relation.from_counts({Row(a=1): 2, Row(a=2): 0})
        assert len(rel) == 2
        assert rel.distinct_count() == 1

    def test_from_counts_negative_raises(self):
        with pytest.raises(RelationError):
            Relation.from_counts({Row(a=1): -1})

    def test_sorted_rows_deterministic(self):
        rel = Relation(rows=[Row(a=2), Row(a=1), Row(a=1)])
        assert rel.sorted_rows() == [Row(a=1), Row(a=1), Row(a=2)]

    def test_hashable(self):
        assert hash(Relation(rows=[Row(a=1)])) == hash(Relation(rows=[Row(a=1)]))


class TestReplaceAll:
    def test_replace_all(self):
        rel = Relation(rows=[Row(a=1)])
        rel.replace_all([Row(a=7), Row(a=8)])
        assert rel.sorted_rows() == [Row(a=7), Row(a=8)]

    def test_clear(self):
        rel = Relation(rows=[Row(a=1)])
        rel.clear()
        assert not rel
