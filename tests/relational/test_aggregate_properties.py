"""Property tests: aggregate delta propagation equals recomputation."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import Aggregate, AggregateSpec, BaseRelation, Select
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema

VALUES = st.integers(min_value=0, max_value=3)


def rows():
    return st.builds(lambda g, q: Row(g=g, q=q), VALUES, VALUES)


@st.composite
def databases(draw) -> Database:
    db = Database()
    db.create_relation("M", Schema(["g", "q"]), draw(st.lists(rows(), max_size=8)))
    return db


@st.composite
def aggregate_exprs(draw) -> Aggregate:
    group_by = draw(st.sampled_from([(), ("g",)]))
    specs = draw(
        st.sampled_from(
            [
                (AggregateSpec("count", "n"),),
                (AggregateSpec("sum", "s", "q"),),
                (AggregateSpec("count", "n"), AggregateSpec("sum", "s", "q")),
            ]
        )
    )
    child = BaseRelation("M")
    if draw(st.booleans()):
        child = Select(compare("q", ">=", draw(VALUES)), child)
    return Aggregate(group_by, specs, child)


@st.composite
def applicable_deltas(draw, db: Database):
    counts: dict[Row, int] = {}
    for row in draw(st.lists(rows(), max_size=4)):
        counts[row] = counts.get(row, 0) + 1
    live = list(db.relation("M"))
    if live:
        for victim in draw(
            st.lists(st.sampled_from(live), max_size=min(4, len(live)))
        ):
            available = db.relation("M").multiplicity(victim) + counts.get(victim, 0)
            if available + counts.get(victim, 0) > 0 and available > 0:
                counts[victim] = counts.get(victim, 0) - 1
                if db.relation("M").multiplicity(victim) + counts[victim] < 0:
                    counts[victim] += 1  # undo: would underflow
    return {"M": Delta(counts)} if counts else {}


@given(data=st.data())
@settings(max_examples=200, deadline=None)
def test_aggregate_incremental_equals_recompute(data):
    db = data.draw(databases())
    expr = data.draw(aggregate_exprs())
    deltas = data.draw(applicable_deltas(db))

    before = evaluate(expr, db)
    view_delta = propagate_delta(expr, db, deltas)
    db.apply_deltas(deltas)
    after = evaluate(expr, db)

    materialized = before.copy()
    view_delta.apply_to(materialized)
    assert materialized == after


@given(data=st.data())
@settings(max_examples=100, deadline=None)
def test_aggregate_deltas_compose(data):
    db = data.draw(databases())
    expr = data.draw(aggregate_exprs())
    d1 = data.draw(applicable_deltas(db))

    view0 = evaluate(expr, db)
    vd1 = propagate_delta(expr, db, d1)
    db.apply_deltas(d1)
    d2 = data.draw(applicable_deltas(db))
    vd2 = propagate_delta(expr, db, d2)
    db.apply_deltas(d2)

    stepwise = view0.copy()
    vd1.apply_to(stepwise)
    vd2.apply_to(stepwise)
    assert stepwise == evaluate(expr, db)
