"""Tests for immutable rows."""

import pytest

from repro.errors import SchemaError
from repro.relational.rows import Row


class TestConstruction:
    def test_from_mapping(self):
        assert Row({"a": 1})["a"] == 1

    def test_from_kwargs(self):
        assert Row(a=1, b=2)["b"] == 2

    def test_mixed_duplicate_rejected(self):
        with pytest.raises(SchemaError):
            Row({"a": 1}, a=2)

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Row({})

    def test_order_insensitive_equality(self):
        assert Row(a=1, b=2) == Row(b=2, a=1)

    def test_hash_consistent_with_equality(self):
        assert hash(Row(a=1, b=2)) == hash(Row(b=2, a=1))


class TestMappingProtocol:
    def test_len_iter_contains(self):
        row = Row(a=1, b=2)
        assert len(row) == 2
        assert set(row) == {"a", "b"}
        assert "a" in row and "z" not in row

    def test_missing_attribute_raises(self):
        with pytest.raises(SchemaError):
            Row(a=1)["z"]

    def test_names(self):
        assert set(Row(a=1, b=2).names) == {"a", "b"}


class TestDerivation:
    def test_project(self):
        assert Row(a=1, b=2, c=3).project(["a", "c"]) == Row(a=1, c=3)

    def test_project_missing_raises(self):
        with pytest.raises(SchemaError):
            Row(a=1).project(["z"])

    def test_merge_disjoint(self):
        assert Row(a=1).merge(Row(b=2)) == Row(a=1, b=2)

    def test_merge_agreeing_shared(self):
        assert Row(a=1, b=2).merge(Row(b=2, c=3)) == Row(a=1, b=2, c=3)

    def test_merge_conflict_raises(self):
        with pytest.raises(SchemaError, match="conflicts"):
            Row(b=1).merge(Row(b=2))

    def test_joins_with(self):
        assert Row(a=1, b=2).joins_with(Row(b=2, c=3), ["b"])
        assert not Row(a=1, b=2).joins_with(Row(b=9, c=3), ["b"])

    def test_replace(self):
        assert Row(a=1, b=2).replace(b=9) == Row(a=1, b=9)

    def test_replace_unknown_raises(self):
        with pytest.raises(SchemaError):
            Row(a=1).replace(z=9)

    def test_replace_returns_new_object(self):
        row = Row(a=1)
        assert row.replace(a=2) is not row
        assert row["a"] == 1


class TestOrdering:
    def test_rows_sortable(self):
        rows = [Row(a=2), Row(a=1)]
        assert sorted(rows) == [Row(a=1), Row(a=2)]

    def test_mixed_value_types_sortable(self):
        # Different value types must not raise during sorting.
        rows = [Row(a="x"), Row(a=1)]
        assert len(sorted(rows)) == 2

    def test_repr_round_trips_values(self):
        assert "a=1" in repr(Row(a=1))
