"""Tests for the standalone MaterializedView helper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConsistencyViolation
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.maintain import MaterializedView
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema


def make_db() -> Database:
    db = Database()
    db.create_relation("R", Schema(["A", "B"]), [Row(A=1, B=2)])
    db.create_relation("S", Schema(["B", "C"]), [Row(B=2, C=3)])
    return db


JOIN = parse_view("V = SELECT * FROM R JOIN S")


class TestBasics:
    def test_initial_materialization(self):
        view = MaterializedView(JOIN, make_db())
        assert view.contents.sorted_rows() == [Row(A=1, B=2, C=3)]
        assert len(view) == 1
        assert view.name == "V"

    def test_apply_updates_base_and_view(self):
        db = make_db()
        view = MaterializedView(JOIN, db)
        delta = view.apply({"R": Delta.insert(Row(A=7, B=2))})
        assert delta.count(Row(A=7, B=2, C=3)) == 1
        assert len(db.relation("R")) == 2
        assert len(view) == 2
        view.verify()

    def test_failed_apply_leaves_both_untouched(self):
        db = make_db()
        view = MaterializedView(JOIN, db)
        with pytest.raises(Exception):
            view.apply({"R": Delta.delete(Row(A=9, B=9))})
        assert len(db.relation("R")) == 1
        view.verify()

    def test_verify_detects_drift(self):
        view = MaterializedView(JOIN, make_db())
        view.contents.insert(Row(A=5, B=5, C=5))  # sabotage
        with pytest.raises(ConsistencyViolation, match="drifted"):
            view.verify()

    def test_refresh_repairs(self):
        view = MaterializedView(JOIN, make_db())
        view.contents.insert(Row(A=5, B=5, C=5))
        view.refresh()
        view.verify()

    def test_counters(self):
        view = MaterializedView(JOIN, make_db())
        view.apply({"R": Delta.insert(Row(A=7, B=2))})
        view.apply({"S": Delta.delete(Row(B=2, C=3))})
        assert view.deltas_applied == 2
        assert view.rows_changed == 3  # +1 row, then -2 rows

    def test_aggregate_view(self):
        db = make_db()
        agg = parse_view("T = SELECT B, count(*) AS n FROM R GROUP BY B")
        view = MaterializedView(agg, db)
        view.apply({"R": Delta.insert(Row(A=9, B=2))})
        assert view.contents.sorted_rows() == [Row(B=2, n=2)]
        view.verify()


VALUES = st.integers(min_value=0, max_value=3)


@given(
    steps=st.lists(
        st.tuples(st.sampled_from(["R", "S"]), VALUES, VALUES),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=60, deadline=None)
def test_long_maintenance_runs_never_drift(steps):
    db = make_db()
    view = MaterializedView(JOIN, db)
    for relation, x, y in steps:
        row = Row(A=x, B=y) if relation == "R" else Row(B=x, C=y)
        view.apply({relation: Delta.insert(row)})
    view.verify()
