"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, log.append, "b")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "first")
        sim.schedule(1.0, log.append, "second")
        sim.run()
        assert log == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [4.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        log = []
        def cascade():
            log.append("outer")
            sim.schedule(1.0, log.append, "inner")
        sim.schedule(1.0, cascade)
        sim.run()
        assert log == ["outer", "inner"]


class TestRunBounds:
    def test_until_stops_and_advances_clock(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "a")
        sim.schedule(10.0, log.append, "b")
        sim.run(until=5.0)
        assert log == ["a"]
        assert sim.pending_events == 1

    def test_until_with_empty_queue_advances_time(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_until_advances_time_with_events_beyond_horizon(self):
        """Regression: the clock must reach ``until`` even when events remain
        past the horizon, so two runs with the same horizon agree on ``now``."""
        busy = Simulator()
        busy.schedule(1.0, lambda: None)
        busy.schedule(10.0, lambda: None)  # beyond the horizon
        busy.run(until=5.0)

        idle = Simulator()
        idle.schedule(1.0, lambda: None)
        idle.run(until=5.0)

        assert busy.now == 5.0
        assert busy.now == idle.now
        assert busy.pending_events == 1

    def test_until_advances_time_when_no_event_before_horizon(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0

    def test_max_events_stop_does_not_jump_clock(self):
        """Stopping on the event cap must not pretend the horizon was reached."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=100.0, max_events=1)
        assert sim.now == 1.0

    def test_event_exactly_at_until_runs(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "edge")
        sim.run(until=5.0)
        assert log == ["edge"]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), log.append, i)
        executed = sim.run(max_events=2)
        assert executed == 2
        assert log == [0, 1]

    def test_step(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "x")
        assert sim.step() is True
        assert sim.step() is False
        assert log == ["x"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        def bad():
            sim.run()
        sim.schedule(1.0, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_determinism_across_instances(self):
        def run_once():
            sim = Simulator(seed=42)
            values = []
            for _ in range(5):
                sim.schedule(sim.rng.random(), values.append, sim.rng.random())
            sim.run()
            return values
        assert run_once() == run_once()
