"""Tests for channels and latency models."""

import random

import pytest

from repro.errors import SimulationError
from repro.faults.plan import ChannelFaultModel
from repro.sim.kernel import Simulator
from repro.sim.network import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    LossyChannel,
    Transmission,
    UniformLatency,
)
from repro.sim.process import Process


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle(self, message, sender):
        self.received.append((self.sim.now, message, sender.name))


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(2.5).sample(random.Random(0)) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(SimulationError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 2.0)
        rng = random.Random(7)
        for _ in range(50):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(SimulationError):
            UniformLatency(3.0, 1.0)

    def test_exponential_positive(self):
        model = ExponentialLatency(2.0)
        rng = random.Random(7)
        assert all(model.sample(rng) >= 0 for _ in range(50))

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(SimulationError):
            ExponentialLatency(0)


class TestChannel:
    def test_delivery_after_latency(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 3.0)
        channel.send("hello")
        sim.run()
        assert b.received == [(3.0, "hello", "a")]

    def test_float_latency_coerced(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 1)
        assert isinstance(channel.latency, FixedLatency)

    def test_fifo_under_random_latency(self):
        """Deliveries on one channel never reorder, whatever the latencies."""
        sim = Simulator(seed=3)
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, UniformLatency(0.0, 10.0))
        for i in range(30):
            sim.schedule(float(i) * 0.1, channel.send, i)
        sim.run()
        payloads = [m for _t, m, _s in b.received]
        assert payloads == list(range(30))

    def test_messages_counted_and_traced(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 0.0)
        channel.send("x")
        sim.run()
        assert channel.messages_sent == 1
        assert len(sim.trace.of_kind("msg_send")) == 1
        assert len(sim.trace.of_kind("msg_recv")) == 1

    def test_independent_channels_can_reorder(self):
        sim = Simulator()
        a, b, c = Recorder(sim, "a"), Recorder(sim, "b"), Recorder(sim, "c")
        slow = Channel(sim, a, c, 10.0)
        fast = Channel(sim, b, c, 1.0)
        slow.send("slow")
        fast.send("fast")
        sim.run()
        assert [m for _t, m, _s in c.received] == ["fast", "slow"]

    def test_fifo_clamp_under_exponential_latency(self):
        """Per-channel delivery times are non-decreasing across many samples
        of a heavy-tailed latency — the invariant ReliableChannel builds on."""
        sim = Simulator(seed=11)
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, ExponentialLatency(5.0))
        promised = []
        for i in range(200):
            sim.schedule(float(i) * 0.25, lambda i=i: promised.append(channel.send(i)))
        sim.run()
        # The promised delivery times are non-decreasing in send order...
        assert promised == sorted(promised)
        # ...actual arrivals honour them, so payloads arrive exactly in order.
        assert [m for _t, m, _s in b.received] == list(range(200))
        times = [t for t, _m, _s in b.received]
        assert times == sorted(times)


class ScriptedFaults:
    """A fault model replaying a fixed list of Transmission decisions."""

    def __init__(self, decisions):
        self._decisions = list(decisions)

    def next_transmission(self):
        if self._decisions:
            return self._decisions.pop(0)
        return Transmission()


class TestLossyChannel:
    def test_clean_faults_behave_like_delivery(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = LossyChannel(sim, a, b, 1.0)
        channel.send("x")
        sim.run()
        assert [m for _t, m, _s in b.received] == ["x"]

    def test_drop(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = LossyChannel(sim, a, b, 1.0, faults=ScriptedFaults([Transmission(drop=True)]))
        channel.send("lost")
        sim.run()
        assert b.received == []
        assert channel.messages_dropped == 1
        assert len(sim.trace.of_kind("msg_drop")) == 1

    def test_duplicate(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = LossyChannel(
            sim, a, b, 1.0, faults=ScriptedFaults([Transmission(duplicates=1)])
        )
        channel.send("x")
        sim.run()
        assert [m for _t, m, _s in b.received] == ["x", "x"]
        assert channel.messages_duplicated == 1

    def test_delay_spike_reorders_within_channel(self):
        """No FIFO clamp: a spiked message arrives after its successor."""
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = LossyChannel(
            sim, a, b, 1.0,
            faults=ScriptedFaults([Transmission(extra_delay=10.0), Transmission()]),
        )
        channel.send("first")
        channel.send("second")
        sim.run()
        assert [m for _t, m, _s in b.received] == ["second", "first"]

    def test_deterministic_fault_model(self):
        def run_once():
            sim = Simulator(seed=5)
            a, b = Recorder(sim, "a"), Recorder(sim, "b")
            model = ChannelFaultModel(drop_rate=0.3, duplicate_rate=0.2, seed=99)
            channel = LossyChannel(sim, a, b, 1.0, faults=model)
            for i in range(50):
                sim.schedule(float(i), channel.send, i)
            sim.run()
            return [m for _t, m, _s in b.received]

        assert run_once() == run_once()
