"""Tests for channels and latency models."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    UniformLatency,
)
from repro.sim.process import Process


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle(self, message, sender):
        self.received.append((self.sim.now, message, sender.name))


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(2.5).sample(random.Random(0)) == 2.5

    def test_fixed_rejects_negative(self):
        with pytest.raises(SimulationError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 2.0)
        rng = random.Random(7)
        for _ in range(50):
            assert 1.0 <= model.sample(rng) <= 2.0

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(SimulationError):
            UniformLatency(3.0, 1.0)

    def test_exponential_positive(self):
        model = ExponentialLatency(2.0)
        rng = random.Random(7)
        assert all(model.sample(rng) >= 0 for _ in range(50))

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(SimulationError):
            ExponentialLatency(0)


class TestChannel:
    def test_delivery_after_latency(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 3.0)
        channel.send("hello")
        sim.run()
        assert b.received == [(3.0, "hello", "a")]

    def test_float_latency_coerced(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 1)
        assert isinstance(channel.latency, FixedLatency)

    def test_fifo_under_random_latency(self):
        """Deliveries on one channel never reorder, whatever the latencies."""
        sim = Simulator(seed=3)
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, UniformLatency(0.0, 10.0))
        for i in range(30):
            sim.schedule(float(i) * 0.1, channel.send, i)
        sim.run()
        payloads = [m for _t, m, _s in b.received]
        assert payloads == list(range(30))

    def test_messages_counted_and_traced(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        channel = Channel(sim, a, b, 0.0)
        channel.send("x")
        sim.run()
        assert channel.messages_sent == 1
        assert len(sim.trace.of_kind("msg_send")) == 1
        assert len(sim.trace.of_kind("msg_recv")) == 1

    def test_independent_channels_can_reorder(self):
        sim = Simulator()
        a, b, c = Recorder(sim, "a"), Recorder(sim, "b"), Recorder(sim, "c")
        slow = Channel(sim, a, c, 10.0)
        fast = Channel(sim, b, c, 1.0)
        slow.send("slow")
        fast.send("fast")
        sim.run()
        assert [m for _t, m, _s in c.received] == ["fast", "slow"]
