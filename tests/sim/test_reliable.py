"""Tests for ReliableChannel: FIFO-exactly-once over a lossy transport."""

import pytest

from repro.errors import SimulationError
from repro.faults.plan import ChannelFaultModel
from repro.sim.kernel import Simulator
from repro.sim.network import ReliableChannel, Transmission
from repro.sim.process import Process


class Recorder(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def handle(self, message, sender):
        self.received.append(message)


class ScriptedFaults:
    def __init__(self, decisions):
        self._decisions = list(decisions)

    def next_transmission(self):
        if self._decisions:
            return self._decisions.pop(0)
        return Transmission()


def make_pair(sim, **kwargs):
    a, b = Recorder(sim, "a"), Recorder(sim, "b")
    channel = ReliableChannel(sim, a, b, **kwargs)
    a.attach(channel)
    return a, b, channel


class TestValidation:
    def test_bad_timeout(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        with pytest.raises(SimulationError):
            ReliableChannel(sim, a, b, timeout=0.0)

    def test_bad_backoff(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        with pytest.raises(SimulationError):
            ReliableChannel(sim, a, b, backoff_factor=0.5)

    def test_cap_below_timeout(self):
        sim = Simulator()
        a, b = Recorder(sim, "a"), Recorder(sim, "b")
        with pytest.raises(SimulationError):
            ReliableChannel(sim, a, b, timeout=4.0, timeout_cap=2.0)


class TestCleanNetwork:
    def test_in_order_delivery(self):
        sim = Simulator()
        a, b, channel = make_pair(sim, latency=1.0)
        for i in range(5):
            channel.send(i)
        sim.run()
        assert b.received == [0, 1, 2, 3, 4]
        assert channel.unacked == 0
        assert channel.retransmissions == 0

    def test_acks_clear_sender_buffer(self):
        sim = Simulator()
        _a, _b, channel = make_pair(sim, latency=1.0)
        channel.send("x")
        assert channel.unacked == 1
        sim.run()
        assert channel.unacked == 0
        assert channel.acks_sent == 1


class TestLossRecovery:
    def test_dropped_frame_retransmitted(self):
        sim = Simulator()
        a, b, channel = make_pair(
            sim, latency=1.0, faults=ScriptedFaults([Transmission(drop=True)])
        )
        channel.send("x")
        sim.run()
        assert b.received == ["x"]
        assert channel.retransmissions == 1
        assert channel.unacked == 0

    def test_dropped_frame_does_not_block_successors(self):
        """Frame 1 is dropped; frames 2..4 arrive first but are held in the
        reorder buffer until the retransmitted frame 1 lands."""
        sim = Simulator()
        a, b, channel = make_pair(
            sim, latency=1.0, faults=ScriptedFaults([Transmission(drop=True)])
        )
        for i in range(1, 5):
            channel.send(i)
        sim.run()
        assert b.received == [1, 2, 3, 4]

    def test_duplicate_frames_suppressed(self):
        sim = Simulator()
        a, b, channel = make_pair(
            sim, latency=1.0, faults=ScriptedFaults([Transmission(duplicates=2)])
        )
        channel.send("x")
        sim.run()
        assert b.received == ["x"]
        assert channel.duplicates_suppressed == 2

    def test_delay_spike_reordered_back_into_sequence(self):
        sim = Simulator()
        a, b, channel = make_pair(
            sim,
            latency=1.0,
            timeout=100.0,
            timeout_cap=100.0,
            faults=ScriptedFaults([Transmission(extra_delay=10.0)]),
        )
        channel.send("first")
        channel.send("second")
        sim.run()
        # Raw transport delivered "second" first; the channel re-sequenced.
        assert b.received == ["first", "second"]

    def test_lost_ack_triggers_retransmit_and_dedup(self):
        sim = Simulator()
        a, b, channel = make_pair(
            sim,
            latency=1.0,
            ack_faults=ScriptedFaults([Transmission(drop=True)]),
        )
        channel.send("x")
        sim.run()
        assert b.received == ["x"]  # exactly once despite the retransmit
        assert channel.retransmissions >= 1
        assert channel.duplicates_suppressed >= 1
        assert channel.unacked == 0

    def test_exactly_once_under_heavy_random_faults(self):
        sim = Simulator(seed=7)
        model = ChannelFaultModel(
            drop_rate=0.3, duplicate_rate=0.2, delay_spike_rate=0.2,
            delay_spike=15.0, seed=1234,
        )
        ack_model = ChannelFaultModel(drop_rate=0.3, seed=4321)
        a, b, channel = make_pair(
            sim, latency=1.0, faults=model, ack_faults=ack_model,
            timeout=5.0, timeout_cap=20.0,
        )
        n = 60
        for i in range(n):
            sim.schedule(float(i), channel.send, i)
        sim.run()
        assert b.received == list(range(n))  # FIFO, exactly once
        assert channel.unacked == 0
        assert channel.retransmissions > 0


class TestBackoff:
    def test_retransmit_intervals_grow_and_cap(self):
        """With every frame copy dropped, retransmit times follow the capped
        exponential schedule: t, t*f, t*f^2, ... clamped at the cap."""
        sim = Simulator()

        class DropAll:
            def next_transmission(self):
                return Transmission(drop=True)

        a, b, channel = make_pair(
            sim, latency=1.0, faults=DropAll(),
            timeout=2.0, backoff_factor=2.0, timeout_cap=8.0,
        )
        channel.send("x")
        sim.run(until=60.0)
        times = [r.time for r in sim.trace.of_kind("msg_retransmit")]
        gaps = [round(t1 - t0, 6) for t0, t1 in zip([0.0] + times, times)]
        # 2, 4, 8, then capped at 8 forever.
        assert gaps[:4] == [2.0, 4.0, 8.0, 8.0]
        assert all(g == 8.0 for g in gaps[3:])


class TestSenderState:
    def test_state_roundtrip_retransmits_backlog(self):
        sim = Simulator()

        class DropAll:
            def __init__(self):
                self.active = True

            def next_transmission(self):
                return Transmission(drop=self.active)

        faults = DropAll()
        a, b, channel = make_pair(sim, latency=1.0, faults=faults, timeout=50.0,
                                  timeout_cap=50.0)
        channel.send("p")
        channel.send("q")
        state = channel.sender_state()
        assert state[0] == 3 and set(state[1]) == {1, 2}

        # Heal the network, wipe the live buffer, restore the checkpoint.
        faults.active = False
        channel._unacked.clear()
        channel.restore_sender_state(state)
        sim.run(until=40.0)
        assert b.received == ["p", "q"]
        assert channel.unacked == 0

    def test_restore_of_already_acked_frames_is_harmless(self):
        sim = Simulator()
        a, b, channel = make_pair(sim, latency=1.0)
        channel.send("p")
        state = channel.sender_state()  # taken before the ack arrives
        sim.run()
        assert b.received == ["p"]
        channel.restore_sender_state(state)  # resurrects an acked frame
        sim.run(until=sim.now + 20.0)
        assert b.received == ["p"]  # suppressed, re-acked
        assert channel.unacked == 0


class TestDestinationCrash:
    def test_unprocessed_frames_redelivered_after_restart(self):
        sim = Simulator()

        class Sluggish(Recorder):
            def service_time(self, message):
                return 2.0

        a = Recorder(sim, "a")
        b = Sluggish(sim, "b")
        channel = ReliableChannel(sim, a, b, latency=1.0, timeout=6.0,
                                  timeout_cap=12.0)
        a.attach(channel)
        for i in range(4):
            channel.send(i)
        # Crash after message 0 is processed but 1..3 still queue/serve.
        sim.schedule_at(4.0, b.crash)
        sim.schedule_at(8.0, b.restart)
        sim.run()
        assert b.received == [0, 1, 2, 3]  # exactly once, in order
        assert b.crashes == 1
        assert channel.unacked == 0
        assert channel.retransmissions >= 1

    def test_frames_arriving_while_crashed_are_dropped_then_recovered(self):
        sim = Simulator()
        a, b, channel = make_pair(sim, latency=1.0, timeout=5.0, timeout_cap=10.0)
        sim.schedule_at(0.5, b.crash)
        sim.schedule_at(3.0, b.restart)
        channel.send("x")  # arrives at t=1 while b is down
        sim.run()
        assert b.received == ["x"]
        assert b.messages_lost >= 1
        assert channel.unacked == 0
