"""Edge cases of the simulation kernel and process accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Process


class Worker(Process):
    def __init__(self, sim, service=1.0):
        super().__init__(sim, "worker")
        self.service = service
        self.seen = []

    def service_time(self, message):
        return self.service

    def handle(self, message, sender):
        self.seen.append(message)


class TestScheduleAt:
    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="now is"):
            sim.schedule_at(1.0, lambda: None)

    def test_exact_time_preserved(self):
        """schedule_at must not perturb the requested instant (float-exact)."""
        sim = Simulator()
        target = 10.123456789012345
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(target, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [target]


class TestRunResumption:
    def test_run_until_then_drain(self):
        sim = Simulator()
        log = []
        for t in (1.0, 5.0, 9.0):
            sim.schedule(t, log.append, t)
        sim.run(until=5.0)
        assert log == [1.0, 5.0]
        sim.run()
        assert log == [1.0, 5.0, 9.0]

    def test_clock_monotone_across_runs(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 4.0


class TestUtilisationAccounting:
    def test_utilisation_with_explicit_elapsed(self):
        sim = Simulator()
        worker = Worker(sim, service=2.0)
        driver = Worker(sim, service=0.0)
        driver.name = "driver"
        driver.connect(worker, 0.0)
        sim.schedule(0.0, driver.send, "worker", "x")
        sim.run()
        assert worker.utilisation(elapsed=4.0) == pytest.approx(0.5)
        assert worker.utilisation(elapsed=0.0) == 0.0

    def test_utilisation_clamped_to_one(self):
        sim = Simulator()
        worker = Worker(sim, service=10.0)
        driver = Worker(sim, service=0.0)
        driver.name = "driver"
        driver.connect(worker, 0.0)
        sim.schedule(0.0, driver.send, "worker", "x")
        sim.run()
        assert worker.utilisation(elapsed=5.0) == 1.0

    def test_mean_queue_length_zero_before_time_advances(self):
        sim = Simulator()
        worker = Worker(sim)
        assert worker.mean_queue_length() == 0.0
