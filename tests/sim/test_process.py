"""Tests for the process/mailbox/service-time machinery."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Process


class Echo(Process):
    """Records handled messages; configurable per-message service time."""

    def __init__(self, sim, name, service=0.0):
        super().__init__(sim, name)
        self.service = service
        self.handled = []

    def service_time(self, message):
        return self.service

    def handle(self, message, sender):
        self.handled.append((self.sim.now, message))


class TestWiring:
    def test_connect_and_send(self):
        sim = Simulator()
        a, b = Echo(sim, "a"), Echo(sim, "b")
        a.connect(b, 2.0)
        sim.schedule(0.0, a.send, "b", "ping")
        sim.run()
        assert b.handled == [(2.0, "ping")]

    def test_send_by_process_object(self):
        sim = Simulator()
        a, b = Echo(sim, "a"), Echo(sim, "b")
        a.connect(b)
        sim.schedule(0.0, a.send, b, "ping")
        sim.run()
        assert b.handled

    def test_missing_channel_raises(self):
        sim = Simulator()
        a = Echo(sim, "a")
        with pytest.raises(SimulationError, match="no channel"):
            a.send("nowhere", "x")

    def test_peers(self):
        sim = Simulator()
        a, b, c = Echo(sim, "a"), Echo(sim, "b"), Echo(sim, "c")
        a.connect(c)
        a.connect(b)
        assert a.peers() == ("b", "c")


class TestServiceDiscipline:
    def test_serial_service(self):
        """A busy process queues messages and serves them one at a time."""
        sim = Simulator()
        server = Echo(sim, "s", service=5.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        for i in range(3):
            sim.schedule(0.0, client.send, "s", i)
        sim.run()
        times = [t for t, _m in server.handled]
        assert times == [5.0, 10.0, 15.0]

    def test_busy_time_and_utilisation(self):
        sim = Simulator()
        server = Echo(sim, "s", service=2.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        sim.schedule(0.0, client.send, "s", "x")
        sim.schedule(10.0, lambda: None)  # extend the run
        sim.run()
        assert server.busy_time == 2.0
        assert server.utilisation() == pytest.approx(0.2)

    def test_queue_statistics(self):
        sim = Simulator()
        server = Echo(sim, "s", service=10.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        for _ in range(4):
            sim.schedule(0.0, client.send, "s", "x")
        sim.run(until=5.0)
        assert server.max_queue_length == 4
        assert server.queue_length == 4  # first still in service
        sim.run()
        assert server.queue_length == 0

    def test_negative_service_time_rejected(self):
        sim = Simulator()
        server = Echo(sim, "s", service=-1.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        sim.schedule(0.0, client.send, "s", "x")
        with pytest.raises(SimulationError):
            sim.run()

    def test_messages_handled_counter(self):
        sim = Simulator()
        server = Echo(sim, "s")
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        for _ in range(7):
            sim.schedule(0.0, client.send, "s", "x")
        sim.run()
        assert server.messages_handled == 7

    def test_base_handle_not_implemented(self):
        sim = Simulator()
        raw = Process(sim, "raw")
        client = Echo(sim, "c")
        client.connect(raw, 0.0)
        sim.schedule(0.0, client.send, "raw", "x")
        with pytest.raises(NotImplementedError):
            sim.run()


class TestCrashRestart:
    def test_crash_wipes_inbox_and_counts_losses(self):
        sim = Simulator()
        server = Echo(sim, "s", service=10.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        for i in range(3):
            sim.schedule(0.0, client.send, "s", i)
        sim.schedule(5.0, server.crash)
        sim.run()
        assert server.handled == []  # first message was still in service
        assert server.queue_length == 0
        assert server.crashes == 1
        assert server.messages_lost == 3
        assert len(sim.trace.of_kind("crash")) == 1

    def test_crash_invalidates_in_service_message(self):
        """The _finish event scheduled before the crash must not fire the
        handler after restart (epoch check)."""
        sim = Simulator()
        server = Echo(sim, "s", service=10.0)
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        sim.schedule(0.0, client.send, "s", "doomed")
        sim.schedule(5.0, server.crash)
        sim.schedule(6.0, server.restart)
        sim.schedule(20.0, client.send, "s", "fresh")
        sim.run()
        assert [m for _t, m in server.handled] == ["fresh"]

    def test_deliver_while_crashed_drops_message(self):
        sim = Simulator()
        server = Echo(sim, "s")
        client = Echo(sim, "c")
        client.connect(server, 2.0)
        sim.schedule(0.0, client.send, "s", "x")  # arrives at t=2
        sim.schedule(1.0, server.crash)
        sim.run()
        assert server.handled == []
        assert server.messages_lost == 1
        assert len(sim.trace.of_kind("msg_lost")) == 1

    def test_restart_resumes_service(self):
        sim = Simulator()
        server = Echo(sim, "s")
        client = Echo(sim, "c")
        client.connect(server, 0.0)
        sim.schedule(0.0, server.crash)
        sim.schedule(1.0, server.restart)
        sim.schedule(2.0, client.send, "s", "back")
        sim.run()
        assert [m for _t, m in server.handled] == ["back"]
        assert not server.crashed
        assert len(sim.trace.of_kind("restart")) == 1

    def test_double_crash_rejected(self):
        sim = Simulator()
        p = Echo(sim, "p")
        p.crash()
        with pytest.raises(SimulationError, match="already crashed"):
            p.crash()

    def test_restart_without_crash_rejected(self):
        sim = Simulator()
        p = Echo(sim, "p")
        with pytest.raises(SimulationError, match="not crashed"):
            p.restart()

    def test_attach_rejects_foreign_channel(self):
        from repro.sim.network import Channel

        sim = Simulator()
        a, b, c = Echo(sim, "a"), Echo(sim, "b"), Echo(sim, "c")
        channel = Channel(sim, a, b, 0.0)
        with pytest.raises(SimulationError, match="cannot attach"):
            c.attach(channel)


class TestTracing:
    def test_trace_helper_records(self):
        sim = Simulator()
        p = Echo(sim, "p")
        p.trace("custom", value=3)
        events = sim.trace.of_kind("custom")
        assert len(events) == 1
        assert events[0].process == "p"
        assert events[0].detail == {"value": 3}
