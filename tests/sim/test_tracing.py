"""Tests for trace recording and querying."""

from repro.sim.tracing import Trace, TraceEvent


class TestTrace:
    def test_record_and_len(self):
        trace = Trace()
        trace.record(1.0, "kind", "proc", a=1)
        assert len(trace) == 1
        assert trace[0] == TraceEvent(1.0, "kind", "proc", {"a": 1})

    def test_disabled_trace_records_nothing(self):
        trace = Trace()
        trace.enabled = False
        trace.record(1.0, "kind", "proc")
        assert len(trace) == 0

    def test_of_kind(self):
        trace = Trace()
        trace.record(1.0, "a", "p")
        trace.record(2.0, "b", "p")
        trace.record(3.0, "a", "q")
        assert len(trace.of_kind("a")) == 2

    def test_by_process(self):
        trace = Trace()
        trace.record(1.0, "a", "p")
        trace.record(2.0, "a", "q")
        assert len(trace.by_process("q")) == 1

    def test_where(self):
        trace = Trace()
        for t in range(5):
            trace.record(float(t), "tick", "p")
        assert len(trace.where(lambda e: e.time >= 3)) == 2

    def test_first_and_last(self):
        trace = Trace()
        trace.record(1.0, "x", "p", n=1)
        trace.record(2.0, "x", "p", n=2)
        assert trace.first("x").detail == {"n": 1}
        assert trace.last("x").detail == {"n": 2}
        assert trace.first("missing") is None
        assert trace.last("missing") is None

    def test_clear(self):
        trace = Trace()
        trace.record(1.0, "x", "p")
        trace.clear()
        assert len(trace) == 0

    def test_format_filters_kinds(self):
        trace = Trace()
        trace.record(1.0, "keep", "p")
        trace.record(2.0, "drop", "p")
        text = trace.format("keep")
        assert "keep" in text and "drop" not in text

    def test_event_str(self):
        event = TraceEvent(1.5, "commit", "warehouse", {"txn": 3})
        assert "commit" in str(event) and "txn=3" in str(event)
