"""Tests for fault plans and per-channel fault models."""

import pytest

from repro.errors import FaultError
from repro.faults.plan import ChannelFaultModel, CrashSpec, FaultPlan


class TestChannelFaultModel:
    def test_same_seed_same_decisions(self):
        def decisions(n=50):
            model = ChannelFaultModel(
                drop_rate=0.2, duplicate_rate=0.1, delay_spike_rate=0.1, seed=7
            )
            return [model.next_transmission() for _ in range(n)]

        assert decisions() == decisions()

    def test_different_seeds_differ(self):
        a = ChannelFaultModel(drop_rate=0.5, seed=1)
        b = ChannelFaultModel(drop_rate=0.5, seed=2)
        assert [a.next_transmission() for _ in range(50)] != [
            b.next_transmission() for _ in range(50)
        ]

    def test_zero_rates_always_clean(self):
        model = ChannelFaultModel(seed=3)
        for _ in range(20):
            t = model.next_transmission()
            assert not t.drop and t.duplicates == 0 and t.extra_delay == 0.0
        assert model.decisions == 20

    def test_raising_one_rate_keeps_other_patterns(self):
        """Three draws per decision: the drop pattern for a seed is identical
        whether or not duplication is also enabled."""
        drops_only = ChannelFaultModel(drop_rate=0.3, seed=11)
        both = ChannelFaultModel(drop_rate=0.3, duplicate_rate=0.5, seed=11)
        a = [drops_only.next_transmission().drop for _ in range(100)]
        b = [both.next_transmission().drop for _ in range(100)]
        assert a == b

    def test_rate_validation(self):
        with pytest.raises(FaultError, match="drop_rate"):
            ChannelFaultModel(drop_rate=1.5)
        with pytest.raises(FaultError, match="duplicate_rate"):
            ChannelFaultModel(duplicate_rate=-0.1)
        with pytest.raises(FaultError, match="delay_spike_rate"):
            ChannelFaultModel(delay_spike_rate=2.0)
        with pytest.raises(FaultError, match="delay_spike"):
            ChannelFaultModel(delay_spike=-1.0)


class TestCrashSpec:
    def test_valid(self):
        spec = CrashSpec("merge", at=10.0, restart_after=2.0)
        assert spec.process == "merge"

    def test_empty_name(self):
        with pytest.raises(FaultError, match="process name"):
            CrashSpec("", at=1.0)

    def test_negative_time(self):
        with pytest.raises(FaultError, match="crash time"):
            CrashSpec("merge", at=-1.0)

    def test_nonpositive_restart(self):
        with pytest.raises(FaultError, match="restart_after"):
            CrashSpec("merge", at=1.0, restart_after=0.0)


class TestFaultPlan:
    def test_channel_seed_stable_and_directional(self):
        plan = FaultPlan(seed=42)
        assert plan.channel_seed("a", "b") == plan.channel_seed("a", "b")
        assert plan.channel_seed("a", "b") != plan.channel_seed("b", "a")
        assert plan.channel_seed("a", "b") != plan.channel_seed("a", "b", salt="ack")
        assert plan.channel_seed("a", "b") != FaultPlan(seed=43).channel_seed("a", "b")

    def test_faults_for_reproducible(self):
        plan = FaultPlan(seed=5, drop_rate=0.4)
        a = plan.faults_for("x", "y")
        b = plan.faults_for("x", "y")
        assert [a.next_transmission() for _ in range(30)] == [
            b.next_transmission() for _ in range(30)
        ]

    def test_ack_faults_independent_stream(self):
        plan = FaultPlan(seed=5, drop_rate=0.4)
        data = plan.faults_for("x", "y")
        ack = plan.ack_faults_for("x", "y")
        assert [data.next_transmission() for _ in range(30)] != [
            ack.next_transmission() for _ in range(30)
        ]

    def test_faulty_network_flag(self):
        assert not FaultPlan().faulty_network
        assert FaultPlan(drop_rate=0.01).faulty_network
        assert FaultPlan(duplicate_rate=0.01).faulty_network
        assert FaultPlan(delay_spike_rate=0.01).faulty_network

    def test_crashes_coerced_to_tuple(self):
        plan = FaultPlan(crashes=[CrashSpec("merge", at=1.0)])
        assert isinstance(plan.crashes, tuple)

    def test_validation_delegates(self):
        with pytest.raises(FaultError):
            FaultPlan(drop_rate=2.0)
        with pytest.raises(FaultError):
            FaultPlan(retransmit_timeout=0.0)
        with pytest.raises(FaultError):
            FaultPlan(backoff_factor=0.9)
        with pytest.raises(FaultError):
            FaultPlan(retransmit_timeout=4.0, timeout_cap=1.0)

    def test_describe(self):
        plan = FaultPlan(
            seed=9, drop_rate=0.05, reliable=False,
            crashes=(CrashSpec("merge", at=12.0, restart_after=3.0),),
        )
        text = plan.describe()
        assert "drop=0.05" in text
        assert "UNRELIABLE" in text
        assert "crash merge@12+3" in text
