"""Tests for workload generation."""

import pytest

from repro.errors import ReproError
from repro.sources.update import UpdateKind
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec
from repro.workloads.schemas import paper_world


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"updates": -1},
            {"rate": 0},
            {"arrivals": "bursty"},
            {"mix": (0, 0, 0)},
            {"mix": (-1, 1, 1)},
            {"multi_update_fraction": 2.0},
        ],
    )
    def test_bad_specs(self, kwargs):
        with pytest.raises(ReproError):
            WorkloadSpec(**kwargs)


class TestGeneration:
    def test_deterministic_for_seed(self):
        def gen():
            stream = UpdateStreamGenerator(
                paper_world(), WorkloadSpec(updates=30, seed=9)
            ).transactions()
            return [(t, str(txn)) for t, txn in stream]

        assert gen() == gen()

    def test_different_seeds_differ(self):
        a = UpdateStreamGenerator(
            paper_world(), WorkloadSpec(updates=30, seed=1)
        ).transactions()
        b = UpdateStreamGenerator(
            paper_world(), WorkloadSpec(updates=30, seed=2)
        ).transactions()
        assert [str(t) for _x, t in a] != [str(t) for _x, t in b]

    def test_times_strictly_increase(self):
        stream = UpdateStreamGenerator(
            paper_world(), WorkloadSpec(updates=50, seed=3, arrivals="poisson")
        ).transactions()
        times = [t for t, _txn in stream]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_uniform_rate_spacing(self):
        stream = UpdateStreamGenerator(
            paper_world(), WorkloadSpec(updates=10, rate=4.0)
        ).transactions()
        gaps = [
            stream[i + 1][0] - stream[i][0] for i in range(len(stream) - 1)
        ]
        assert all(gap == pytest.approx(0.25) for gap in gaps)

    def test_deletes_target_live_rows(self):
        """Replaying the stream against the world never underflows."""
        world = paper_world()
        spec = WorkloadSpec(updates=200, seed=13, mix=(0.4, 0.4, 0.2))
        stream = UpdateStreamGenerator(world, spec).transactions()
        for time, txn in stream:
            world.commit(txn, time)  # raises on any bad delete
        assert world.version == 200

    def test_origin_owns_relations(self):
        world = paper_world()
        stream = UpdateStreamGenerator(
            world, WorkloadSpec(updates=50, seed=5)
        ).transactions()
        for _time, txn in stream:
            for update in txn.updates:
                assert world.owner_of(update.relation) == txn.origin

    def test_multi_update_transactions_generated(self):
        world = paper_world(sources=1)  # all relations on one source
        spec = WorkloadSpec(updates=60, seed=5, multi_update_fraction=1.0)
        stream = UpdateStreamGenerator(world, spec).transactions()
        assert any(len(txn.updates) > 1 for _t, txn in stream)

    def test_relation_weights_bias(self):
        world = paper_world()
        spec = WorkloadSpec(
            updates=100, seed=5,
            relation_weights={"R": 100.0, "S": 0.0001, "T": 0.0001, "Q": 0.0001},
        )
        stream = UpdateStreamGenerator(world, spec).transactions()
        r_count = sum(
            1 for _t, txn in stream if txn.updates[0].relation == "R"
        )
        assert r_count > 90

    def test_hot_fraction_skews_values(self):
        world = paper_world()
        spec = WorkloadSpec(
            updates=200, seed=4, mix=(1.0, 0.0, 0.0),
            value_range=100, hot_fraction=0.9, hot_keys=2,
        )
        stream = UpdateStreamGenerator(world, spec).transactions()
        values = [
            v
            for _t, txn in stream
            for u in txn.updates
            for v in u.row.values()
            if isinstance(v, int)
        ]
        hot = sum(1 for v in values if v < 2)
        assert hot / len(values) > 0.75  # ~90% expected

    def test_hot_fraction_validation(self):
        with pytest.raises(ReproError):
            WorkloadSpec(hot_fraction=1.5)
        with pytest.raises(ReproError):
            WorkloadSpec(hot_keys=0)

    def test_mix_all_inserts(self):
        world = paper_world()
        spec = WorkloadSpec(updates=40, seed=2, mix=(1.0, 0.0, 0.0))
        stream = UpdateStreamGenerator(world, spec).transactions()
        kinds = {u.kind for _t, txn in stream for u in txn.updates}
        assert kinds == {UpdateKind.INSERT}
