"""Tests for the canonical worlds and view suites."""

from repro.merge.distributed import partition_views
from repro.relational.algebra import evaluate
from repro.workloads.schemas import (
    bank_views,
    bank_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_world,
    star_views,
    star_world,
)


class TestPaperWorld:
    def test_table1_initial_state(self):
        world = paper_world()
        assert len(world.current.relation("R")) == 1
        assert len(world.current.relation("S")) == 0
        assert len(world.current.relation("T")) == 1
        assert len(world.current.relation("Q")) == 0

    def test_unseeded(self):
        world = paper_world(seed_rows=False)
        assert len(world.current.relation("R")) == 0

    def test_sources_spread(self):
        world = paper_world(sources=4)
        owners = {world.owner_of(r) for r in ("R", "S", "T", "Q")}
        assert len(owners) == 4
        single = paper_world(sources=1)
        assert {single.owner_of(r) for r in ("R", "S", "T", "Q")} == {"src0"}

    def test_view_suites_evaluate(self):
        world = paper_world()
        for suite in (
            paper_views_example1(),
            paper_views_example2(),
            paper_views_example3(),
        ):
            for view in suite:
                evaluate(view.expression, world.current)  # must not raise

    def test_example3_partitions_like_figure3(self):
        groups = partition_views(paper_views_example3())
        assert groups == [("V1", "V2"), ("V3",)]


class TestBankWorld:
    def test_initial_population(self):
        world = bank_world(customers=10)
        assert len(world.current.relation("Checking")) == 10
        assert len(world.current.relation("Savings")) == 10
        assert world.owner_of("Checking") == "retail"
        assert world.owner_of("Savings") == "savings"

    def test_views_evaluate_consistently(self):
        world = bank_world(customers=10)
        views = {v.name: v for v in bank_views()}
        portfolio = evaluate(views["Portfolio"].expression, world.current)
        assert len(portfolio) == 10
        gold = evaluate(views["GoldLedger"].expression, world.current)
        assert len(gold) == 2  # customers 0 and 5

    def test_portfolio_and_gold_share_base_relations(self):
        groups = partition_views(bank_views())
        assert len(groups) == 1  # all bank views share Checking/Savings


class TestStarWorld:
    def test_dimensions_seeded(self):
        world = star_world(products=8, stores=4)
        assert len(world.current.relation("Product")) == 8
        assert len(world.current.relation("Store")) == 4
        assert len(world.current.relation("Sales")) == 0

    def test_selective_views_present(self):
        names = [v.name for v in star_views(selective=True)]
        assert "BigTickets" in names and "CheapCatalog" in names
        assert len(star_views(selective=False)) == 2
