"""Tests for state replay and the vector-valued MVC checkers."""

from repro.consistency.mvc import (
    check_mvc_complete,
    check_mvc_convergent,
    check_mvc_strong,
    classify_mvc,
)
from repro.consistency.states import (
    replay_source_states,
    source_view_values,
    view_sequence,
)
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.viewmgr.actions import ActionList
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction

SCHEMAS = {"R": Schema(["A"])}
DEFS = [parse_view("V = SELECT * FROM R")]


def initial() -> Database:
    db = Database()
    db.create_relation("R", SCHEMAS["R"])
    return db


def txns(*updates):
    return [SourceTransaction.single("src", u) for u in updates]


class TestReplay:
    def test_replay_produces_prefix_states(self):
        states = replay_source_states(
            initial(),
            txns(Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})),
        )
        assert [len(s.relation("R")) for s in states] == [0, 1, 2]

    def test_replay_leaves_initial_untouched(self):
        first = initial()
        replay_source_states(first, txns(Update.insert("R", {"A": 1})))
        assert len(first.relation("R")) == 0

    def test_source_view_values(self):
        states = replay_source_states(
            initial(), txns(Update.insert("R", {"A": 1}))
        )
        values = source_view_values(states, DEFS)
        assert len(values) == 2
        assert len(values[1]["V"]) == 1
        assert view_sequence(values, "V")[0].distinct_count() == 0


class TestMvcCheckers:
    def _store_with(self, *deltas):
        store = ViewStore(DEFS, SCHEMAS)
        for i, delta in enumerate(deltas, start=1):
            lists = (ActionList.from_delta("V", "m", (i,), delta),)
            store.apply(WarehouseTransaction(i, "m", lists, (i,)), float(i))
        return store

    def test_complete_run(self):
        states = replay_source_states(
            initial(),
            txns(Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})),
        )
        store = self._store_with(
            Delta.insert(Row(A=1)), Delta.insert(Row(A=2))
        )
        assert check_mvc_complete(store.history, states, DEFS)
        assert check_mvc_strong(store.history, states, DEFS)
        assert check_mvc_convergent(store.history, states, DEFS)
        assert classify_mvc(store.history, states, DEFS) == "complete"

    def test_skipping_state_is_strong(self):
        states = replay_source_states(
            initial(),
            txns(Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})),
        )
        store = self._store_with(Delta({Row(A=1): 1, Row(A=2): 1}))
        assert not check_mvc_complete(store.history, states, DEFS)
        assert check_mvc_strong(store.history, states, DEFS)
        assert classify_mvc(store.history, states, DEFS) == "strong"

    def test_wrong_intermediate_is_convergent(self):
        states = replay_source_states(
            initial(),
            txns(Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})),
        )
        store = self._store_with(
            Delta.insert(Row(A=2)),
            Delta.insert(Row(A=1)),
        )
        assert classify_mvc(store.history, states, DEFS) == "convergent"

    def test_diverged_is_inconsistent(self):
        states = replay_source_states(
            initial(), txns(Update.insert("R", {"A": 1}))
        )
        store = self._store_with(Delta.insert(Row(A=9)))
        assert classify_mvc(store.history, states, DEFS) == "inconsistent"
