"""Property tests for the order-aware checker itself.

The checker is the oracle for the whole suite, so it gets validated both
ways: correct-by-construction histories must always be accepted, and a
random single-state corruption must always be rejected.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.consistency.ordered import check_mvc_ordered
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.viewmgr.actions import ActionList
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction

SCHEMAS = {"R": Schema(["A"]), "S": Schema(["B"])}
DEFS = [
    parse_view("VR = SELECT * FROM R"),
    parse_view("VS = SELECT * FROM S"),
    parse_view("VB = SELECT * FROM R JOIN S"),  # cross product: reads both
]


def initial() -> Database:
    db = Database()
    db.create_relation("R", SCHEMAS["R"])
    db.create_relation("S", SCHEMAS["S"])
    return db


@st.composite
def workloads(draw):
    """Random insert-only updates over R and S."""
    count = draw(st.integers(min_value=1, max_value=8))
    updates = []
    for index in range(count):
        relation = draw(st.sampled_from(["R", "S"]))
        attr = "A" if relation == "R" else "B"
        updates.append(
            Update.insert(relation, {attr: 100 * index + draw(
                st.integers(min_value=0, max_value=3)
            )})
        )
    return updates


@st.composite
def legal_orders(draw, updates):
    """A permutation preserving per-relation order (conflict-legal)."""
    streams = {"R": [], "S": []}
    for index, update in enumerate(updates, start=1):
        streams[update.relation].append(index)
    order = []
    while streams["R"] or streams["S"]:
        candidates = [r for r in ("R", "S") if streams[r]]
        pick = draw(st.sampled_from(candidates))
        order.append(streams[pick].pop(0))
    return order


def build_history(updates, order):
    """Apply updates (correctly) to a ViewStore in the given order."""
    store = ViewStore(DEFS, SCHEMAS)
    db = initial()
    by_id = {i + 1: u for i, u in enumerate(updates)}
    for txn_id, update_id in enumerate(order, start=1):
        update = by_id[update_id]
        deltas = {update.relation: update.as_delta()}
        lists = []
        for definition in DEFS:
            if update.relation in definition.base_relations():
                view_delta = propagate_delta(definition.expression, db, deltas)
                lists.append(
                    ActionList.from_delta(
                        definition.name, definition.name,
                        (update_id,), view_delta,
                    )
                )
        db.apply_deltas(deltas)
        store.apply(
            WarehouseTransaction(txn_id, "m", tuple(lists), (update_id,)),
            float(txn_id),
        )
    return store


def numbered(updates):
    return [
        (i + 1, SourceTransaction.single("src", u), float(i))
        for i, u in enumerate(updates)
    ]


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_correct_histories_always_accepted(data):
    updates = data.draw(workloads())
    order = data.draw(legal_orders(updates))
    store = build_history(updates, order)
    report = check_mvc_ordered(
        store.history, initial(), numbered(updates), DEFS, "complete"
    )
    assert report, report.reason


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_corrupted_histories_always_rejected(data):
    updates = data.draw(workloads())
    order = data.draw(legal_orders(updates))
    store = build_history(updates, order)
    # Corrupt exactly one recorded state: poison one view's contents.
    history = list(store.history)
    victim_index = data.draw(
        st.integers(min_value=1, max_value=len(history) - 1)
    )
    victim = history[victim_index]
    view_name = data.draw(st.sampled_from([d.name for d in DEFS]))
    poisoned_views = {n: r.copy() for n, r in victim.views.items()}
    poisoned_views[view_name].insert(
        Row(A=-1) if view_name == "VR" else
        Row(B=-1) if view_name == "VS" else Row(A=-1, B=-1)
    )
    history[victim_index] = type(victim)(
        index=victim.index,
        txn_id=victim.txn_id,
        time=victim.time,
        covered_rows=victim.covered_rows,
        views=poisoned_views,
    )
    report = check_mvc_ordered(
        history, initial(), numbered(updates), DEFS, "strong"
    )
    assert not report
