"""Tests for the order-aware MVC checkers."""

import pytest

from repro.consistency.ordered import (
    check_mvc_ordered,
    classify_mvc_ordered,
    reconstruct_schedule,
)
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.parser import parse_view
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.viewmgr.actions import ActionList
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction

SCHEMAS = {"R": Schema(["A"]), "S": Schema(["B"])}
DEFS = [parse_view("VR = SELECT * FROM R"), parse_view("VS = SELECT * FROM S")]


def initial() -> Database:
    db = Database()
    db.create_relation("R", SCHEMAS["R"])
    db.create_relation("S", SCHEMAS["S"])
    return db


def numbered(*updates):
    return [
        (i + 1, SourceTransaction.single("src", u), float(i))
        for i, u in enumerate(updates)
    ]


def run_store(apply_order):
    """Build a ViewStore history applying (row_id, view, delta) tuples."""
    store = ViewStore(DEFS, SCHEMAS)
    for txn_id, entries in enumerate(apply_order, start=1):
        lists = tuple(
            ActionList.from_delta(view, view, (row,), delta)
            for row, view, delta in entries
        )
        rows = tuple(sorted({row for row, _v, _d in entries}))
        store.apply(WarehouseTransaction(txn_id, "m", lists, rows), float(txn_id))
    return store


class TestReconstruction:
    def test_schedule_concatenates_covered_rows(self):
        store = run_store(
            [
                [(2, "VS", Delta.insert(Row(B=1)))],
                [(1, "VR", Delta.insert(Row(A=1)))],
            ]
        )
        assert reconstruct_schedule(store.history) == [2, 1]


class TestOrderedCheck:
    def test_in_order_complete(self):
        updates = numbered(
            Update.insert("R", {"A": 1}), Update.insert("S", {"B": 1})
        )
        store = run_store(
            [
                [(1, "VR", Delta.insert(Row(A=1)))],
                [(2, "VS", Delta.insert(Row(B=1)))],
            ]
        )
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "complete")
        assert report, report.reason

    def test_commuting_reorder_is_complete(self):
        """Applying U2 (on S) before U1 (on R) is legal — they commute."""
        updates = numbered(
            Update.insert("R", {"A": 1}), Update.insert("S", {"B": 1})
        )
        store = run_store(
            [
                [(2, "VS", Delta.insert(Row(B=1)))],
                [(1, "VR", Delta.insert(Row(A=1)))],
            ]
        )
        assert check_mvc_ordered(store.history, initial(), updates, DEFS, "complete")

    def test_same_relation_reorder_rejected(self):
        updates = numbered(
            Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})
        )
        store = run_store(
            [
                [(2, "VR", Delta.insert(Row(A=2)))],
                [(1, "VR", Delta.insert(Row(A=1)))],
            ]
        )
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "strong")
        assert not report
        assert "out of order" in report.reason

    def test_wrong_contents_rejected(self):
        updates = numbered(Update.insert("R", {"A": 1}))
        store = run_store([[(1, "VR", Delta.insert(Row(A=99)))]])
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "strong")
        assert not report

    def test_partial_atomicity_rejected(self):
        """One update's changes applied to one view but not the other."""
        defs = [
            parse_view("VR = SELECT * FROM R"),
            parse_view("VR2 = SELECT * FROM R"),
        ]
        store = ViewStore(defs, SCHEMAS)
        lists = (ActionList.from_delta("VR", "m", (1,), Delta.insert(Row(A=1))),)
        store.apply(WarehouseTransaction(1, "m", lists, (1,)), 1.0)
        updates = numbered(Update.insert("R", {"A": 1}))
        report = check_mvc_ordered(store.history, initial(), updates, defs, "strong")
        assert not report

    def test_batched_transaction_is_strong_not_complete(self):
        updates = numbered(
            Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})
        )
        combined = Delta({Row(A=1): 1, Row(A=2): 1})
        store = run_store([[(1, "VR", Delta()), (2, "VR", combined)]])
        # One transaction covering rows (1, 2).
        history = store.history
        assert check_mvc_ordered(history, initial(), updates, DEFS, "strong")
        report = check_mvc_ordered(history, initial(), updates, DEFS, "complete")
        assert not report
        assert "completeness" in report.reason

    def test_duplicate_application_rejected(self):
        updates = numbered(Update.insert("R", {"A": 1}))
        store = run_store(
            [
                [(1, "VR", Delta.insert(Row(A=1)))],
                [(1, "VR", Delta())],
            ]
        )
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "strong")
        assert not report
        assert "twice" in report.reason

    def test_skipped_invisible_update_ok(self):
        """An update never applied must be value-invisible — deletes+insert
        cancelling out counts."""
        updates = numbered(
            Update.insert("R", {"A": 1}),
            Update.insert("S", {"B": 7}),  # never shipped to the warehouse
        )
        # VS never changes because... S DID change; final check must fail.
        store = run_store([[(1, "VR", Delta.insert(Row(A=1)))]])
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "strong")
        assert not report
        assert "final" in report.reason

    def test_unknown_update_rejected(self):
        updates = numbered(Update.insert("R", {"A": 1}))
        store = run_store([[(9, "VR", Delta.insert(Row(A=1)))]])
        report = check_mvc_ordered(store.history, initial(), updates, DEFS, "strong")
        assert not report


class TestClassify:
    def test_complete_classification(self):
        updates = numbered(Update.insert("R", {"A": 1}))
        store = run_store([[(1, "VR", Delta.insert(Row(A=1)))]])
        assert classify_mvc_ordered(store.history, initial(), updates, DEFS) == "complete"

    def test_convergent_classification(self):
        updates = numbered(
            Update.insert("R", {"A": 1}), Update.insert("R", {"A": 2})
        )
        # A wrong intermediate state that nevertheless converges.
        store = run_store(
            [
                [(1, "VR", Delta.insert(Row(A=2)))],
                [(2, "VR", Delta({Row(A=2): 0, Row(A=1): 1}))],
            ]
        )
        assert classify_mvc_ordered(store.history, initial(), updates, DEFS) == "convergent"

    def test_inconsistent_classification(self):
        updates = numbered(Update.insert("R", {"A": 1}))
        store = run_store([[(1, "VR", Delta.insert(Row(A=42)))]])
        assert classify_mvc_ordered(store.history, initial(), updates, DEFS) == "inconsistent"
