"""Tests for the single-sequence consistency checkers."""

import pytest

from repro.consistency.checker import (
    ConsistencyReport,
    check_complete,
    check_convergent,
    check_strong,
    strongest_level,
)
from repro.consistency.states import collapse_consecutive
from repro.errors import ConsistencyViolation


class TestCollapse:
    def test_collapses_adjacent_duplicates(self):
        assert collapse_consecutive([1, 1, 2, 2, 2, 3, 1]) == [1, 2, 3, 1]

    def test_empty(self):
        assert collapse_consecutive([]) == []


class TestConvergent:
    def test_final_match(self):
        assert check_convergent([0, 99, 3], [0, 1, 2, 3])

    def test_final_mismatch(self):
        report = check_convergent([0, 2], [0, 1, 3])
        assert not report
        assert "final" in report.reason

    def test_empty_sequences(self):
        assert not check_convergent([], [0])


class TestStrong:
    def test_identity(self):
        report = check_strong([0, 1, 2], [0, 1, 2])
        assert report
        assert report.mapping == (0, 1, 2)

    def test_subsequence_allowed(self):
        report = check_strong([0, 2, 4], [0, 1, 2, 3, 4])
        assert report
        assert report.mapping == (0, 2, 4)

    def test_order_violation_fails(self):
        assert not check_strong([0, 2, 1, 2], [0, 1, 2])

    def test_missing_final_state_fails(self):
        report = check_strong([0, 1], [0, 1, 2])
        assert not report
        assert "final" in report.reason

    def test_unknown_value_fails(self):
        assert not check_strong([0, 99], [0, 1, 2])

    def test_adjacent_duplicates_tolerated(self):
        assert check_strong([0, 1, 1, 2], [0, 1, 2])

    def test_source_duplicates_handled(self):
        # The same value may recur in the source sequence.
        assert check_strong([0, 1, 0], [0, 1, 0])


class TestComplete:
    def test_exact_sequence(self):
        assert check_complete([0, 1, 2], [0, 1, 2])

    def test_skipping_fails(self):
        report = check_complete([0, 2], [0, 1, 2])
        assert not report

    def test_divergence_reported_with_position(self):
        report = check_complete([0, 9, 2], [0, 1, 2])
        assert "state #1" in report.reason

    def test_collapsed_comparison(self):
        # Extra adjacent duplicates on either side don't matter.
        assert check_complete([0, 0, 1, 2, 2], [0, 1, 1, 2])


class TestLevels:
    def test_strongest_level_ladder(self):
        assert strongest_level([0, 1, 2], [0, 1, 2]) == "complete"
        assert strongest_level([0, 2], [0, 1, 2]) == "strong"
        assert strongest_level([9, 2], [0, 1, 2]) == "convergent"
        assert strongest_level([9, 8], [0, 1, 2]) == "inconsistent"

    def test_report_require(self):
        with pytest.raises(ConsistencyViolation):
            ConsistencyReport(False, "strong", "boom").require()
        good = ConsistencyReport(True, "strong")
        assert good.require() is good
