"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.viewmgr.actions import ActionList


@pytest.fixture
def paper_db() -> Database:
    """The Table-1 initial base state: R={[1,2]}, S={}, T={[3,4]}, Q={}."""
    db = Database()
    db.create_relation("R", Schema(["A", "B"]), [Row(A=1, B=2)])
    db.create_relation("S", Schema(["B", "C"]))
    db.create_relation("T", Schema(["C", "D"]), [Row(C=3, D=4)])
    db.create_relation("Q", Schema(["D", "E"]))
    return db


def make_al(view: str, covered, tag: int = 0, manager: str | None = None) -> ActionList:
    """A non-empty action list for merge-algorithm tests."""
    return ActionList.from_delta(
        view,
        manager or view,
        tuple(covered),
        Delta.insert(Row(x=tag)),
    )


def empty_al(view: str, covered, manager: str | None = None) -> ActionList:
    """A content-empty action list (still a protocol message)."""
    return ActionList.from_delta(view, manager or view, tuple(covered), Delta())


def unit_summary(units):
    """Compact (rows, views) rendering of emitted ready units."""
    return [(u.rows, tuple(al.view for al in u.action_lists)) for u in units]
