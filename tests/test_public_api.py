"""The public API surface: everything advertised must exist and be documented."""

import inspect

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_version_present(self):
        assert repro.__version__

    def test_core_entry_points_callable(self):
        assert callable(repro.WarehouseSystem)
        assert callable(repro.SystemConfig)
        assert callable(repro.parse_view)
        assert callable(repro.sweep)

    def test_public_classes_documented(self):
        """Every exported class/function carries a docstring."""
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_subpackages_documented(self):
        import repro.cache
        import repro.conformance
        import repro.consistency
        import repro.integrator
        import repro.merge
        import repro.relational
        import repro.sim
        import repro.sources
        import repro.system
        import repro.viewmgr
        import repro.warehouse
        import repro.workloads

        for module in (
            repro,
            repro.relational,
            repro.sim,
            repro.sources,
            repro.integrator,
            repro.viewmgr,
            repro.merge,
            repro.warehouse,
            repro.consistency,
            repro.system,
            repro.workloads,
            repro.conformance,
            repro.cache,
        ):
            assert (module.__doc__ or "").strip(), module.__name__
