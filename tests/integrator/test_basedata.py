"""Tests for the base-data service."""

import pytest

from repro.errors import SourceError
from repro.integrator.basedata import BaseDataService
from repro.messages import NumberedUpdate, SnapshotQuery, SnapshotResponse
from repro.relational.database import Database
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.update import Update

SCHEMAS = {"R": Schema(["A"])}


class Client(Process):
    def __init__(self, sim, name="vm:V1"):
        super().__init__(sim, name)
        self.responses = []

    def handle(self, message, sender):
        assert isinstance(message, SnapshotResponse)
        self.responses.append((self.sim.now, message))


@pytest.fixture
def rig():
    sim = Simulator()
    service = BaseDataService(sim)
    initial = Database()
    initial.create_relation("R", SCHEMAS["R"], [Row(A=0)])
    service.seed(initial, SCHEMAS)
    client = Client(sim)
    client.connect(service, 0.0)
    service.connect(client, 0.0)
    driver = Client(sim, "driver")
    driver.connect(service, 0.0)
    return sim, service, client, driver


def push(sim, driver, update_id, row, at=0.0):
    sim.schedule(
        at,
        driver.send,
        "basedata",
        NumberedUpdate(update_id, (Update.insert("R", {"A": row}),)),
    )


class TestVersioning:
    def test_applies_numbered_updates_in_order(self, rig):
        sim, service, _client, driver = rig
        push(sim, driver, 1, 1)
        push(sim, driver, 2, 2, at=1.0)
        sim.run()
        assert service.version == 2

    def test_out_of_order_update_rejected(self, rig):
        sim, _service, _client, driver = rig
        push(sim, driver, 2, 1)
        with pytest.raises(SourceError, match="out of order"):
            sim.run()


class TestQueries:
    def test_current_state_query(self, rig):
        sim, _service, client, driver = rig
        push(sim, driver, 1, 1)
        sim.schedule(
            1.0,
            driver.send,
            "basedata",
            SnapshotQuery(1, "vm:V1", frozenset({"R"}), version=None),
        )
        sim.run()
        _time, response = client.responses[0]
        assert response.version == 1
        assert response.contents["R"] == {Row(A=0): 1, Row(A=1): 1}

    def test_historic_version_query(self, rig):
        sim, _service, client, driver = rig
        push(sim, driver, 1, 1)
        push(sim, driver, 2, 2, at=1.0)
        sim.schedule(
            2.0,
            driver.send,
            "basedata",
            SnapshotQuery(1, "vm:V1", frozenset({"R"}), version=1),
        )
        sim.run()
        response = client.responses[0][1]
        assert response.version == 1
        assert Row(A=2) not in response.contents["R"]

    def test_future_version_query_deferred(self, rig):
        sim, service, client, driver = rig
        sim.schedule(
            0.0,
            driver.send,
            "basedata",
            SnapshotQuery(1, "vm:V1", frozenset({"R"}), version=1),
        )
        push(sim, driver, 1, 1, at=5.0)
        sim.run()
        assert service.queries_deferred == 1
        time, response = client.responses[0]
        assert time >= 5.0
        assert response.version == 1

    def test_undo_information(self, rig):
        sim, _service, client, driver = rig
        push(sim, driver, 1, 1)
        push(sim, driver, 2, 2, at=1.0)
        push(sim, driver, 3, 3, at=2.0)
        sim.schedule(
            3.0,
            driver.send,
            "basedata",
            SnapshotQuery(
                1, "vm:V1", frozenset({"R"}), version=None, undo_from=1
            ),
        )
        sim.run()
        response = client.responses[0][1]
        assert [u for u, _up in response.undo_updates] == [2, 3]

    def test_query_cost_delays_response(self, rig):
        sim, service, client, driver = rig
        service.per_query_cost = 4.0
        sim.schedule(
            0.0,
            driver.send,
            "basedata",
            SnapshotQuery(1, "vm:V1", frozenset({"R"}), version=0),
        )
        sim.run()
        assert client.responses[0][0] == 4.0

    def test_retain_window_prunes(self, rig):
        sim, service, _client, driver = rig
        service.retain_window = 1
        for i in range(1, 5):
            push(sim, driver, i, i, at=float(i))
        sim.run()
        assert 1 not in service._db.retained_versions()

    def test_unknown_message_rejected(self, rig):
        sim, _service, _client, driver = rig
        sim.schedule(0.0, driver.send, "basedata", "junk")
        with pytest.raises(SourceError):
            sim.run()
