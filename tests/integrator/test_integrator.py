"""Tests for the integrator process."""

import pytest

from repro.errors import IntegratorError
from repro.integrator.integrator import Integrator
from repro.messages import (
    NumberedUpdate,
    RelMessage,
    UpdateForView,
    UpdateNotification,
)
from repro.relational.parser import parse_view
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.viewmgr.complete_n import EndOfBlock

SCHEMAS = {"R": Schema(["A"]), "S": Schema(["B"])}
DEFS = [
    parse_view("V1 = SELECT * FROM R"),
    parse_view("V2 = SELECT * FROM R JOIN S"),
]


class Sink(Process):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.messages = []

    def handle(self, message, sender):
        self.messages.append(message)


def build(sim, **kwargs):
    merge = Sink(sim, "merge")
    vm1 = Sink(sim, "vm:V1")
    vm2 = Sink(sim, "vm:V2")
    service = Sink(sim, "basedata")
    integrator = Integrator(sim, DEFS, SCHEMAS, **kwargs)
    for sink in (merge, vm1, vm2, service):
        integrator.connect(sink, 0.0)
    driver = Sink(sim, "driver")
    driver.connect(integrator, 0.0)
    return integrator, merge, vm1, vm2, service, driver


def notify(sim, driver, update, at=0.0):
    txn = SourceTransaction.single("src", update)
    sim.schedule(at, driver.send, "integrator", UpdateNotification(txn, at))


class TestRouting:
    def test_numbers_and_routes(self):
        sim = Simulator()
        integrator, merge, vm1, vm2, service, driver = build(sim)
        notify(sim, driver, Update.insert("R", {"A": 1}))
        sim.run()
        assert integrator.updates_numbered == 1
        rels = [m for m in merge.messages if isinstance(m, RelMessage)]
        assert rels == [RelMessage(1, frozenset({"V1", "V2"}))]
        assert any(isinstance(m, UpdateForView) for m in vm1.messages)
        assert any(isinstance(m, UpdateForView) for m in vm2.messages)
        assert any(isinstance(m, NumberedUpdate) for m in service.messages)

    def test_irrelevant_view_not_routed(self):
        sim = Simulator()
        integrator, merge, vm1, vm2, _service, driver = build(sim)
        notify(sim, driver, Update.insert("S", {"B": 1}))
        sim.run()
        assert vm1.messages == []  # V1 reads only R
        assert len(vm2.messages) == 1

    def test_numbering_is_arrival_order(self):
        sim = Simulator()
        integrator, merge, _vm1, _vm2, _service, driver = build(sim)
        notify(sim, driver, Update.insert("R", {"A": 1}), at=1.0)
        notify(sim, driver, Update.insert("S", {"B": 1}), at=2.0)
        sim.run()
        assert [u for u, _t, _c in integrator.numbered] == [1, 2]
        ids = [m.update_id for m in merge.messages if isinstance(m, RelMessage)]
        assert ids == [1, 2]

    def test_multi_update_transaction_restricted_per_view(self):
        sim = Simulator()
        integrator, _merge, vm1, vm2, _service, driver = build(sim)
        txn = SourceTransaction(
            "src",
            (Update.insert("R", {"A": 1}), Update.insert("S", {"B": 2})),
        )
        sim.schedule(0.0, driver.send, "integrator", UpdateNotification(txn, 0.0))
        sim.run()
        v1_updates = vm1.messages[0].updates
        assert all(u.relation == "R" for u in v1_updates)
        v2_updates = vm2.messages[0].updates
        assert {u.relation for u in v2_updates} == {"R", "S"}

    def test_service_optional(self):
        """An integrator can run without a base-data service (all-cached
        managers never query one)."""
        sim = Simulator()
        merge = Sink(sim, "merge")
        vm1, vm2 = Sink(sim, "vm:V1"), Sink(sim, "vm:V2")
        integrator = Integrator(sim, DEFS, SCHEMAS, service_name=None)
        for sink in (merge, vm1, vm2):
            integrator.connect(sink, 0.0)
        driver = Sink(sim, "driver")
        driver.connect(integrator, 0.0)
        notify(sim, driver, Update.insert("R", {"A": 1}))
        sim.run()
        assert integrator.updates_numbered == 1
        assert any(isinstance(m, UpdateForView) for m in vm1.messages)

    def test_rejects_unknown_message(self):
        sim = Simulator()
        _integrator, _m, _v1, _v2, _s, driver = build(sim)
        sim.schedule(0.0, driver.send, "integrator", "junk")
        with pytest.raises(IntegratorError):
            sim.run()


class TestMergeGroups:
    def test_rel_restricted_to_group(self):
        sim = Simulator()
        merge_a = Sink(sim, "mA")
        merge_b = Sink(sim, "mB")
        service = Sink(sim, "basedata")
        vm1, vm2 = Sink(sim, "vm:V1"), Sink(sim, "vm:V2")
        integrator = Integrator(
            sim,
            DEFS,
            SCHEMAS,
            merge_groups={"mA": ("V1",), "mB": ("V2",)},
        )
        for sink in (merge_a, merge_b, vm1, vm2, service):
            integrator.connect(sink, 0.0)
        driver = Sink(sim, "driver")
        driver.connect(integrator, 0.0)
        # An S update touches only V2's group.
        notify(sim, driver, Update.insert("S", {"B": 1}))
        sim.run()
        assert merge_a.messages == []
        assert merge_b.messages == [RelMessage(1, frozenset({"V2"}))]

    def test_transaction_spanning_groups_rejected(self):
        sim = Simulator()
        merge_a, merge_b = Sink(sim, "mA"), Sink(sim, "mB")
        service = Sink(sim, "basedata")
        vm1, vm2 = Sink(sim, "vm:V1"), Sink(sim, "vm:V2")
        integrator = Integrator(
            sim, DEFS, SCHEMAS, merge_groups={"mA": ("V1",), "mB": ("V2",)}
        )
        for sink in (merge_a, merge_b, vm1, vm2, service):
            integrator.connect(sink, 0.0)
        driver = Sink(sim, "driver")
        driver.connect(integrator, 0.0)
        # R updates touch V1 (group A) and V2 (group B) at once.
        notify(sim, driver, Update.insert("R", {"A": 1}))
        with pytest.raises(IntegratorError, match="several merge groups"):
            sim.run()

    def test_overlapping_groups_rejected(self):
        sim = Simulator()
        with pytest.raises(IntegratorError, match="several merges"):
            Integrator(
                sim, DEFS, SCHEMAS,
                merge_groups={"mA": ("V1", "V2"), "mB": ("V2",)},
            )

    def test_uncovered_view_rejected(self):
        sim = Simulator()
        with pytest.raises(IntegratorError, match="no merge process"):
            Integrator(sim, DEFS, SCHEMAS, merge_groups={"mA": ("V1",)})


class TestCompleteNSupport:
    def test_end_of_block_markers(self):
        sim = Simulator()
        integrator, merge, vm1, vm2, _service, driver = build(
            sim, block_size=2, send_empty_rels=True
        )
        for i in range(4):
            notify(sim, driver, Update.insert("R", {"A": i}), at=float(i))
        sim.run()
        markers = [m for m in vm1.messages if isinstance(m, EndOfBlock)]
        assert [m.through for m in markers] == [2, 4]

    def test_selection_filter_counts(self):
        sim = Simulator()
        defs = [parse_view("Big = SELECT * FROM R WHERE A >= 10")]
        merge = Sink(sim, "merge")
        vm = Sink(sim, "vm:Big")
        service = Sink(sim, "basedata")
        integrator = Integrator(
            sim, defs, SCHEMAS, use_selection_filtering=True
        )
        for sink in (merge, vm, service):
            integrator.connect(sink, 0.0)
        driver = Sink(sim, "driver")
        driver.connect(integrator, 0.0)
        notify(sim, driver, Update.insert("R", {"A": 1}), at=0.0)
        notify(sim, driver, Update.insert("R", {"A": 50}), at=1.0)
        sim.run()
        assert integrator.filtered_out == 1
        assert len(vm.messages) == 1
