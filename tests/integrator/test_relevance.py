"""Tests for relevant-view computation and selection-condition filtering."""

import pytest

from repro.integrator.relevance import RelevanceFilter, relevant_views
from repro.relational.parser import parse_view
from repro.relational.schema import Attribute, AttrType, Schema
from repro.sources.update import Update

SCHEMAS = {
    "Sales": Schema(
        [
            Attribute("sale"),
            Attribute("prod"),
            Attribute("qty"),
        ]
    ),
    "Product": Schema([Attribute("prod"), Attribute("price")]),
}

DEFS = [
    parse_view("All = SELECT * FROM Sales JOIN Product"),
    parse_view("Big = SELECT sale, qty FROM Sales WHERE qty >= 10"),
    parse_view("Cheap = SELECT * FROM Product WHERE price <= 5"),
]


class TestBaseRelationTest:
    def test_views_reading(self):
        filt = RelevanceFilter(DEFS, SCHEMAS)
        assert set(filt.views_reading("Sales")) == {"All", "Big"}
        assert set(filt.views_reading("Product")) == {"All", "Cheap"}
        assert filt.views_reading("Nothing") == ()

    def test_update_relevant_to_readers_only(self):
        filt = RelevanceFilter(DEFS, SCHEMAS)
        update = Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 3})
        assert filt.relevant_views([update]) == frozenset({"All", "Big"})

    def test_without_filtering_selection_ignored(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=False)
        low = Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 1})
        assert "Big" in filt.relevant_views([low])


class TestSelectionFiltering:
    def test_insert_failing_selection_filtered(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        low = Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 1})
        assert filt.relevant_views([low]) == frozenset({"All"})

    def test_insert_passing_selection_kept(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        high = Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 50})
        assert "Big" in filt.relevant_views([high])

    def test_delete_filtered_like_insert(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        low = Update.delete("Sales", {"sale": 1, "prod": 2, "qty": 1})
        assert "Big" not in filt.relevant_views([low])

    def test_modify_relevant_if_either_row_passes(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        crossing = Update.modify(
            "Sales",
            {"sale": 1, "prod": 2, "qty": 1},
            {"sale": 1, "prod": 2, "qty": 20},
        )
        assert "Big" in filt.relevant_views([crossing])
        below = Update.modify(
            "Sales",
            {"sale": 1, "prod": 2, "qty": 1},
            {"sale": 1, "prod": 2, "qty": 2},
        )
        assert "Big" not in filt.relevant_views([below])

    def test_selection_on_other_relation_does_not_filter(self):
        """Cheap's predicate is on Product; Sales updates can't be pruned by it."""
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        update = Update.insert("Product", {"prod": 1, "price": 50})
        assert filt.relevant_views([update]) == frozenset({"All"})
        cheap = Update.insert("Product", {"prod": 1, "price": 2})
        assert filt.relevant_views([cheap]) == frozenset({"All", "Cheap"})


class TestMultiUpdate:
    def test_union_over_transaction(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        updates = [
            Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 1}),
            Update.insert("Product", {"prod": 9, "price": 1}),
        ]
        assert filt.relevant_views(updates) == frozenset({"All", "Cheap"})

    def test_relevant_updates_for_view(self):
        filt = RelevanceFilter(DEFS, SCHEMAS, use_selections=True)
        sales = Update.insert("Sales", {"sale": 1, "prod": 2, "qty": 50})
        product = Update.insert("Product", {"prod": 9, "price": 1})
        restricted = filt.relevant_updates_for_view("Big", [sales, product])
        assert restricted == (sales,)

    def test_one_shot_helper(self):
        update = Update.insert("Product", {"prod": 1, "price": 2})
        views = relevant_views(DEFS, SCHEMAS, [update], use_selections=True)
        assert views == frozenset({"All", "Cheap"})
