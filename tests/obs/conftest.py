"""Fixtures for observability tests: one finished paper-schema run."""

from __future__ import annotations

import pytest

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world


def run_paper_system(config: SystemConfig | None = None,
                     updates: int = 25, rate: float = 4.0,
                     seed: int = 21) -> WarehouseSystem:
    """Build + drive the b1-style workload (paper schema, example-2 views)."""
    world = paper_world()
    spec = WorkloadSpec(updates=updates, rate=rate, seed=seed,
                        mix=(0.6, 0.2, 0.2))
    system = WarehouseSystem(
        world, paper_views_example2(),
        config if config is not None else SystemConfig(seed=seed),
    )
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()
    return system


@pytest.fixture(scope="module")
def finished_system() -> WarehouseSystem:
    return run_paper_system()
