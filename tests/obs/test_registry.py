"""The typed metrics registry: instrument semantics + registry identity."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)


class TestCounter:
    def test_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("msgs", process="merge")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("msgs")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_key_includes_sorted_labels(self):
        counter = MetricsRegistry().counter("sent", dst="b", src="a")
        assert counter.key == "sent{dst=b,src=a}"
        assert MetricsRegistry().counter("bare").key == "bare"


class TestGauge:
    def test_min_max_current(self):
        gauge = MetricsRegistry().gauge("queue")
        for value in (3.0, 7.0, 1.0):
            gauge.set(value)
        assert gauge.value == 1.0
        assert gauge.min == 1.0
        assert gauge.max == 7.0

    def test_timeline_keeps_samples(self):
        gauge = MetricsRegistry().gauge("vut", timeline=True)
        gauge.set(2, at=1.0)
        gauge.set(5, at=2.5)
        assert gauge.samples == ((1.0, 2), (2.5, 5))

    def test_no_timeline_by_default(self):
        gauge = MetricsRegistry().gauge("vut")
        gauge.set(2, at=1.0)
        assert gauge.samples == ()


class TestHistogram:
    def test_stats(self):
        histogram = MetricsRegistry().histogram("wait")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.mean == 2.5
        assert histogram.max == 4.0
        assert histogram.quantile(0.5) == pytest.approx(2.5)

    def test_quantile_matches_percentile_helper(self):
        values = [float(v) for v in (9, 1, 5, 7, 3)]
        histogram = MetricsRegistry().histogram("wait")
        for value in values:
            histogram.observe(value)
        assert histogram.quantile(0.95) == percentile(values, 0.95)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("sent", src="x", dst="y")
        b = registry.counter("sent", dst="y", src="x")  # label order free
        assert a is b
        assert len(registry) == 1

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_family_and_value(self):
        registry = MetricsRegistry()
        registry.counter("sent", src="a").inc(2)
        registry.counter("sent", src="b").inc(3)
        registry.gauge("other").set(9)
        family = registry.family("sent")
        assert [m.labels for m in family] == [(("src", "a"),), (("src", "b"),)]
        assert registry.value("sent", src="b") == 3
        assert registry.value("missing", default=-1.0) == -1.0

    def test_to_dict_and_format(self):
        registry = MetricsRegistry()
        registry.counter("sent", src="a").inc()
        registry.histogram("wait", process="m").observe(2.0)
        dump = registry.to_dict()
        assert dump["sent{src=a}"] == {"type": "counter", "value": 1.0}
        assert dump["wait{process=m}"]["count"] == 1
        text = registry.format(prefix="sent")
        assert "sent{src=a}" in text
        assert "wait" not in text


class TestSimulationWiring:
    """Instruments a real run actually registers (the tentpole hooks)."""

    def test_process_instruments_match_legacy_stats(self, finished_system):
        registry = finished_system.sim.metrics
        for process in [finished_system.integrator,
                        finished_system.warehouse,
                        *finished_system.merge_processes]:
            assert registry.value(
                "proc_messages_handled", process=process.name
            ) == process.messages_handled
            assert registry.value(
                "proc_busy_time", process=process.name
            ) == pytest.approx(process.busy_time)

    def test_channel_counters_registered(self, finished_system):
        registry = finished_system.sim.metrics
        sent = registry.family("chan_messages_sent")
        assert sent, "no channel counters registered"
        assert sum(m.value for m in sent) > 0

    def test_vut_timeline_gauge(self, finished_system):
        merge = finished_system.merge_processes[0]
        gauge = finished_system.sim.metrics.get("merge_vut_size",
                                                merge=merge.name)
        assert gauge is not None
        assert gauge.samples, "timeline gauge kept no samples"
        times = [t for t, _ in gauge.samples]
        assert times == sorted(times)
        assert int(gauge.max) == finished_system.metrics().vut_peak

    def test_queue_wait_histogram_feeds_metrics(self, finished_system):
        process = finished_system.merge_processes[0]
        count, mean, p95 = process.queue_wait_stats()
        assert count == process.messages_handled
        assert 0.0 <= mean <= p95 or count == 0
        stats = finished_system.metrics().process(process.name)
        assert stats.mean_queue_wait == pytest.approx(mean)
        assert stats.p95_queue_wait == pytest.approx(p95)
