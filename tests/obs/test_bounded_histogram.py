"""Bounded (reservoir) histograms: exactness, memory bound, determinism."""

from __future__ import annotations

import pytest

from repro.obs.registry import Histogram, MetricsRegistry


def filled(bound: int | None, n: int = 1000) -> Histogram:
    histogram = Histogram("h", (), bound=bound)
    for value in range(n):
        histogram.observe(float(value))
    return histogram


class TestExactModeUnchanged:
    def test_default_is_exact(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bound is None
        for value in range(100):
            histogram.observe(float(value))
        assert len(histogram.values()) == 100

    def test_exact_summary_has_no_bound_key(self):
        histogram = Histogram("h", ())
        histogram.observe(2.0)
        assert histogram.summary() == {
            "type": "histogram",
            "count": 1,
            "total": 2.0,
            "mean": 2.0,
            "p50": 2.0,
            "p95": 2.0,
            "max": 2.0,
        }


class TestBoundedMode:
    def test_scalars_stay_exact(self):
        histogram = filled(bound=16)
        assert histogram.count == 1000
        assert histogram.total == sum(range(1000))
        assert histogram.mean == pytest.approx(499.5)
        assert histogram.max == 999.0

    def test_reservoir_size_respected(self):
        assert len(filled(bound=16).values()) == 16
        assert len(filled(bound=16, n=10).values()) == 10

    def test_summary_carries_bound(self):
        assert filled(bound=16).summary()["bound"] == 16

    def test_quantiles_from_reservoir_are_plausible(self):
        histogram = filled(bound=128, n=10_000)
        # Algorithm R keeps a uniform sample: the median of 0..9999
        # should land well inside the middle half
        assert 2_500 < histogram.quantile(0.5) < 7_500

    def test_reservoir_is_deterministic(self):
        # RNG seeded from the instrument identity: same key + same
        # observation sequence => same retained samples, across runs
        # and across processes
        assert filled(bound=16).values() == filled(bound=16).values()

    def test_different_identities_sample_differently(self):
        first = Histogram("a", (), bound=16)
        second = Histogram("b", (), bound=16)
        for value in range(1000):
            first.observe(float(value))
            second.observe(float(value))
        assert first.values() != second.values()

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            Histogram("h", (), bound=0)


class TestRegistryDefaults:
    def test_registry_level_default_bound(self):
        registry = MetricsRegistry(histogram_bound=8)
        histogram = registry.histogram("h")
        assert histogram.bound == 8

    def test_explicit_bound_overrides_default(self):
        registry = MetricsRegistry(histogram_bound=8)
        assert registry.histogram("wide", bound=32).bound == 32
        assert registry.histogram("exact", bound=None).bound is None

    def test_parallel_registry_histograms_are_bounded(self):
        registry = MetricsRegistry(locked=True, origin="worker-thread",
                                   histogram_bound=64)
        histogram = registry.histogram("h")
        for value in range(200):
            histogram.observe(float(value))
        assert histogram.bound == 64
        assert len(histogram.values()) == 64
        assert histogram.count == 200


class TestAbsorb:
    def test_absorb_keeps_scalars_exact(self):
        histogram = Histogram("h", (), bound=8)
        histogram.absorb(100, 450.0, 9.0, [1.0, 2.0, 3.0])
        histogram.absorb(50, 50.0, 20.0, [4.0])
        assert histogram.count == 150
        assert histogram.total == 500.0
        assert histogram.max == 20.0

    def test_absorb_downsamples_to_bound(self):
        histogram = Histogram("h", (), bound=8)
        histogram.absorb(100, 0.0, 1.0, [float(v) for v in range(100)])
        assert len(histogram.values()) == 8

    def test_exact_mode_absorb_concatenates(self):
        histogram = Histogram("h", ())
        histogram.absorb(3, 6.0, 3.0, [1.0, 2.0, 3.0])
        assert histogram.values() == (1.0, 2.0, 3.0)
