"""Exporting a locked registry / thread-safe trace under concurrent writers.

Satellite for the telemetry subsystem: all exporters read instruments
through a single ``summary()``/materialise call, so a snapshot taken
while worker threads are writing must parse cleanly (no torn lines) and
a final snapshot taken after the writers join must equal the instrument
state exactly.
"""

from __future__ import annotations

import json
import threading

from repro.obs.export import to_chrome_trace, write_jsonl
from repro.obs.promexport import parse_prometheus, to_prometheus, to_snapshot
from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import ThreadSafeTrace
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import (
    UpdateStreamGenerator,
    WorkloadSpec,
    post_stream,
)
from repro.workloads.schemas import paper_views_example2, paper_world

WRITERS = 4
#: fixed work per writer — free-spinning writers would grow the trace
#: faster than the exporter can walk it (to_chrome_trace is O(events)
#: per round), livelocking the test under the GIL
OPS_PER_WRITER = 3_000


class TestHammer:
    def test_export_while_writers_hammer(self, tmp_path):
        registry = MetricsRegistry(locked=True, origin="worker-thread",
                                   histogram_bound=64)
        trace = ThreadSafeTrace()

        def writer(index: int) -> None:
            counter = registry.counter("hammer_ops", worker=str(index))
            histogram = registry.histogram("hammer_seconds",
                                           worker=str(index))
            gauge = registry.gauge("hammer_depth", worker=str(index))
            for n in range(OPS_PER_WRITER):
                counter.inc()
                histogram.observe(float(n % 7))
                gauge.set(float(n % 13))
                if n % 8 == 0:
                    trace.record(float(n), "hammer", f"w{index}", n=n)

        threads = [
            threading.Thread(target=writer, args=(index,), daemon=True)
            for index in range(WRITERS)
        ]
        for thread in threads:
            thread.start()
        try:
            previous: dict[str, float] = {}

            def export_round() -> None:
                samples = parse_prometheus(to_prometheus(registry))
                # no torn reads: every line parsed, counters monotonic
                for key, value in samples.items():
                    if "hammer_ops" in key:
                        assert value >= previous.get(key, 0.0)
                        previous[key] = value
                json.dumps(to_snapshot(registry))
                document = to_chrome_trace(trace)
                assert all("ts" in e or e["ph"] == "M"
                           for e in document["traceEvents"])

            # scrape continuously while the writers run, then twice more
            # against the quiescent instruments
            while any(thread.is_alive() for thread in threads):
                export_round()
            export_round()
            export_round()
        finally:
            for thread in threads:
                thread.join(timeout=30.0)

        # round-trip equality against the now-quiescent instruments
        samples = parse_prometheus(to_prometheus(registry))
        for index in range(WRITERS):
            key = f'repro_hammer_ops{{worker="{index}",origin="worker-thread"}}'
            assert samples[key] == registry.value("hammer_ops",
                                                  worker=str(index))
            assert samples[key] == OPS_PER_WRITER
        path = write_jsonl(trace, tmp_path / "hammer.jsonl")
        assert sum(1 for _ in path.open()) == len(trace)

    def test_cursor_never_skips_events(self):
        """events_since under concurrent recording loses nothing."""
        trace = ThreadSafeTrace()
        stop = threading.Event()

        def writer() -> None:
            n = 0
            while not stop.is_set():
                trace.record(float(n), "tick", "w", n=n)
                n += 1

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            cursor, seen = 0, 0
            for _ in range(200):
                cursor, events = trace.events_since(cursor)
                seen += len(events)
        finally:
            stop.set()
            thread.join(timeout=5.0)
        cursor, events = trace.events_since(cursor)
        seen += len(events)
        assert seen == len(trace)


class TestThreadsRuntimeExport:
    def test_export_during_live_threads_run(self):
        """Scrape a real threads-runtime system while it is executing."""
        world = paper_world()
        spec = WorkloadSpec(updates=40, rate=8.0, seed=21,
                            mix=(0.6, 0.2, 0.2))
        system = WarehouseSystem(
            world, paper_views_example2(),
            SystemConfig(seed=21, runtime="threads", workers=2),
        )
        post_stream(system, UpdateStreamGenerator(world, spec).transactions())
        failure: list[BaseException] = []

        def run() -> None:
            try:
                system.run()
            except BaseException as exc:  # noqa: BLE001 - reported below
                failure.append(exc)

        runner = threading.Thread(target=run)
        runner.start()
        scrapes = 0
        try:
            while runner.is_alive():
                samples = parse_prometheus(to_prometheus(system.sim.metrics))
                json.dumps(to_snapshot(system.sim.metrics))
                scrapes += 1
                runner.join(timeout=0.01)
        finally:
            runner.join(timeout=120.0)
        assert not failure, failure
        assert scrapes > 0
        assert samples  # the last mid-run scrape parsed
        system.close()
