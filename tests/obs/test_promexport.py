"""Prometheus/JSON metric exporters: format, round-trips, dispatch."""

from __future__ import annotations

import json

import pytest

from repro.obs.promexport import (
    parse_prometheus,
    to_prometheus,
    to_snapshot,
    write_metrics,
)
from repro.obs.registry import MetricsRegistry


def small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("msgs_sent", src="a", dst="b").inc(3)
    registry.counter("msgs_sent", src="b", dst="a").inc(1)
    registry.gauge("queue_depth", proc="merge").set(7)
    histogram = registry.histogram("latency", proc="merge")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    return registry


class TestToPrometheus:
    def test_type_lines_per_family(self):
        text = to_prometheus(small_registry())
        assert "# TYPE repro_msgs_sent counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_latency summary" in text
        # one TYPE line per family, not per instrument
        assert text.count("# TYPE repro_msgs_sent counter") == 1

    def test_counter_and_gauge_samples(self):
        # labels render in the registry's sorted-by-key order
        samples = parse_prometheus(to_prometheus(small_registry()))
        assert samples['repro_msgs_sent{dst="b",src="a"}'] == 3.0
        assert samples['repro_msgs_sent{dst="a",src="b"}'] == 1.0
        assert samples['repro_queue_depth{proc="merge"}'] == 7.0

    def test_histogram_becomes_summary_family(self):
        samples = parse_prometheus(to_prometheus(small_registry()))
        assert samples['repro_latency_sum{proc="merge"}'] == 10.0
        assert samples['repro_latency_count{proc="merge"}'] == 4.0
        assert samples['repro_latency{proc="merge",quantile="0.5"}'] == 2.5

    def test_origin_exported_as_label(self):
        registry = MetricsRegistry(origin="worker-thread")
        registry.counter("ops").inc(2)
        samples = parse_prometheus(to_prometheus(registry))
        assert samples == {'repro_ops{origin="worker-thread"}': 2.0}

    def test_namespace_override_and_empty(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc()
        assert "myapp_ops 1.0" in to_prometheus(registry, namespace="myapp")
        assert to_prometheus(registry, namespace="").startswith("# TYPE ops ")

    def test_invalid_name_characters_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("cache.hit-rate").inc()
        text = to_prometheus(registry)
        assert "repro_cache_hit_rate 1.0" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops", node='sel["x"]').inc()
        text = to_prometheus(registry)
        assert 'node="sel[\\"x\\"]"' in text
        assert parse_prometheus(text)  # still one parseable sample

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == {}

    def test_every_instrument_appears(self, finished_system):
        registry = finished_system.sim.metrics
        samples = parse_prometheus(to_prometheus(registry))
        # each counter/gauge exports 1 sample, each histogram 5
        # (3 quantiles + _sum + _count)
        expected = sum(
            5 if metric.summary()["type"] == "histogram" else 1
            for metric in registry
        )
        assert len(samples) == expected


class TestSnapshot:
    def test_meta_header(self):
        registry = MetricsRegistry(origin="des")
        registry.counter("ops").inc()
        snapshot = to_snapshot(registry)
        assert snapshot["meta"]["format"] == "repro-metrics-snapshot/1"
        assert snapshot["meta"]["origin"] == "des"
        assert snapshot["meta"]["instruments"] == 1

    def test_round_trips_through_json(self, finished_system):
        snapshot = to_snapshot(finished_system.sim.metrics)
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_metrics_match_to_dict(self, finished_system):
        registry = finished_system.sim.metrics
        assert to_snapshot(registry)["metrics"] == registry.to_dict()


class TestWriteMetrics:
    def test_prom_extension(self, tmp_path):
        path = write_metrics(small_registry(), tmp_path / "m.prom")
        assert parse_prometheus(path.read_text())

    def test_txt_extension(self, tmp_path):
        path = write_metrics(small_registry(), tmp_path / "m.txt")
        assert "# TYPE" in path.read_text()

    def test_json_extension(self, tmp_path):
        path = write_metrics(small_registry(), tmp_path / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded == to_snapshot(small_registry())

    def test_unknown_extension_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown metrics format"):
            write_metrics(small_registry(), tmp_path / "m.csv")
