"""Live freshness monitor: staleness derivation, SLOs, tick gating."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.freshness import FreshnessMonitor, SloPolicy
from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import Trace
from repro.system.config import SystemConfig

from tests.obs.conftest import run_paper_system


class _StubSim:
    def __init__(self):
        self.now = 0.0
        self.trace = Trace()
        self.metrics = MetricsRegistry()


class _StubMerge:
    def __init__(self, name: str, depth: int = 0, vut: int = 0):
        self.name = name
        self.queue_length = depth
        self.algorithm = type("A", (), {"vut": dict.fromkeys(range(vut))})()


class _StubSystem:
    def __init__(self, views=("V1", "V2"), merges=()):
        self.sim = _StubSim()
        self.view_managers = dict.fromkeys(views)
        self.merge_processes = list(merges)


class TestSloPolicy:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ReproError, match="max_staleness"):
            SloPolicy(max_staleness=-1.0)

    def test_active(self):
        assert not SloPolicy().active()
        assert SloPolicy(max_queue_depth=5).active()


class TestStalenessDerivation:
    def test_pending_update_ages_until_committed(self):
        system = _StubSystem()
        monitor = FreshnessMonitor(system, tick=1.0)
        sim = system.sim
        sim.trace.record(2.5, "int_number", "integrator",
                         update_id=1, commit_time=2.0, rel=("V1",))
        sim.now = 5.0
        monitor.sample()
        assert sim.metrics.value("view_staleness", view="V1") == 3.0
        assert sim.metrics.value("view_staleness", view="V2") == 0.0
        sim.trace.record(5.5, "wh_commit", "warehouse",
                         rows=(1,), views=("V1",))
        sim.now = 7.0
        monitor.sample()
        assert sim.metrics.value("view_staleness", view="V1") == 0.0

    def test_oldest_pending_commit_wins(self):
        system = _StubSystem(views=("V1",))
        monitor = FreshnessMonitor(system, tick=1.0)
        sim = system.sim
        sim.trace.record(1.0, "int_number", "integrator",
                         update_id=1, commit_time=1.0, rel=("V1",))
        sim.trace.record(4.0, "int_number", "integrator",
                         update_id=2, commit_time=4.0, rel=("V1",))
        sim.now = 6.0
        monitor.sample()
        assert sim.metrics.value("view_staleness", view="V1") == 5.0

    def test_tick_gates_maybe_sample(self):
        system = _StubSystem()
        monitor = FreshnessMonitor(system, tick=10.0)
        monitor.maybe_sample()
        assert monitor.samples == 1
        system.sim.now = 5.0
        monitor.maybe_sample()
        assert monitor.samples == 1  # inside the tick: skipped
        system.sim.now = 10.0
        monitor.maybe_sample()
        assert monitor.samples == 2

    def test_invalid_tick_rejected(self):
        with pytest.raises(ReproError, match="tick"):
            FreshnessMonitor(_StubSystem(), tick=0.0)


class TestSloEvaluation:
    def test_staleness_breach_counted_and_traced(self):
        system = _StubSystem(views=("V1",))
        monitor = FreshnessMonitor(
            system, tick=1.0, policy=SloPolicy(max_staleness=1.0)
        )
        sim = system.sim
        sim.trace.record(0.0, "int_number", "integrator",
                         update_id=1, commit_time=0.0, rel=("V1",))
        sim.now = 3.0
        monitor.sample()
        assert monitor.breaches == 1
        assert sim.metrics.value("slo_breaches", kind="staleness") == 1.0
        (event,) = sim.trace.of_kind("slo_breach")
        assert event.detail["target"] == "V1"
        assert event.detail["value"] == 3.0
        assert event.detail["threshold"] == 1.0

    def test_queue_and_vut_breaches(self):
        merge = _StubMerge("merge", depth=8, vut=5)
        system = _StubSystem(merges=[merge])
        monitor = FreshnessMonitor(
            system, tick=1.0,
            policy=SloPolicy(max_queue_depth=4, max_vut=3),
        )
        monitor.sample()
        metrics = system.sim.metrics
        assert metrics.value("monitor_queue_depth", merge="merge") == 8.0
        assert metrics.value("monitor_vut_occupancy", merge="merge") == 5.0
        assert metrics.value("slo_breaches", kind="queue_depth") == 1.0
        assert metrics.value("slo_breaches", kind="vut_occupancy") == 1.0
        assert monitor.breaches == 2

    def test_no_policy_no_breaches(self):
        merge = _StubMerge("merge", depth=100, vut=100)
        monitor = FreshnessMonitor(_StubSystem(merges=[merge]), tick=1.0)
        monitor.sample()
        assert monitor.breaches == 0


class TestReporting:
    def test_snapshot_and_format(self):
        merge = _StubMerge("merge", depth=2)
        system = _StubSystem(views=("V1",), merges=[merge])
        monitor = FreshnessMonitor(system, tick=1.0)
        monitor.sample()
        snap = monitor.snapshot()
        assert snap["samples"] == 1 and snap["breaches"] == 0
        assert snap["staleness"]["V1"] == {"current": 0.0, "max": 0.0}
        assert snap["shards"]["merge"]["queue_depth_max"] == 2.0
        text = monitor.format()
        assert "freshness monitor: 1 sample(s), 0 SLO breach(es)" in text
        assert "V1" in text and "merge" in text


class TestSystemIntegration:
    def test_monitor_samples_during_des_run(self):
        system = run_paper_system(
            SystemConfig(seed=21, freshness_tick=0.5)
        )
        monitor = system.monitor
        assert monitor is not None
        assert monitor.samples > 10
        assert monitor.breaches == 0
        # fully drained run ends caught up
        for view in system.view_managers:
            gauge = system.sim.metrics.get("view_staleness", view=view)
            assert gauge is not None and gauge.value == 0.0
        # the run was genuinely behind at some point
        assert any(
            system.sim.metrics.get("view_staleness", view=view).max > 0.0
            for view in system.view_managers
        )

    def test_slo_implies_monitor_and_breaches(self):
        system = run_paper_system(
            SystemConfig(seed=21, slo=SloPolicy(max_staleness=0.5))
        )
        assert system.monitor is not None
        assert system.monitor.breaches > 0
        assert system.sim.metrics.value("slo_breaches", kind="staleness") > 0
        assert system.sim.trace.of_kind("slo_breach")

    def test_config_validates_telemetry_knobs(self):
        with pytest.raises(ReproError, match="freshness_tick"):
            SystemConfig(freshness_tick=0.0)
        with pytest.raises(ReproError, match="SloPolicy"):
            SystemConfig(slo="tight")  # type: ignore[arg-type]
