"""Exporter round-trips: export → parse → same events, same order."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    read_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    to_timeline,
    write_chrome_trace,
    write_jsonl,
    write_timeline,
    write_trace,
)


class TestChromeTrace:
    def test_round_trip_count_and_order(self, finished_system, tmp_path):
        trace = finished_system.sim.trace
        path = write_chrome_trace(trace, tmp_path / "trace.json")
        loaded = read_chrome_trace(path)
        assert len(loaded) == len(trace)
        # file order preserves trace order; categories mirror event kinds
        assert [e["cat"] for e in loaded] == [e.kind for e in trace]

    def test_document_is_perfetto_shaped(self, finished_system):
        document = to_chrome_trace(finished_system.sim.trace)
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        events = document["traceEvents"]
        # every simulated process has a thread-name metadata record
        names = {
            e["args"]["name"] for e in events if e.get("ph") == "M"
        }
        assert "integrator" in names and "warehouse" in names
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        for event in events:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_proc_msg_becomes_duration_slice(self, finished_system):
        events = to_chrome_trace(finished_system.sim.trace)["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        assert all(e["cat"] == "proc_msg" for e in slices)

    def test_json_serialisable(self, finished_system):
        # must not choke on tuples/frozensets in event details
        json.dumps(to_chrome_trace(finished_system.sim.trace))


class TestJsonl:
    def test_lossless_round_trip(self, finished_system, tmp_path):
        trace = finished_system.sim.trace
        path = write_jsonl(trace, tmp_path / "trace.jsonl")
        loaded = read_jsonl(path)
        assert len(loaded) == len(trace)
        for original, parsed in zip(trace, loaded):
            assert parsed.time == original.time
            assert parsed.kind == original.kind
            assert parsed.process == original.process

    def test_id_fields_come_back_as_tuples(self, finished_system, tmp_path):
        path = write_jsonl(finished_system.sim.trace, tmp_path / "t.jsonl")
        loaded = read_jsonl(path)
        carriers = [e for e in loaded if "ids" in e.detail]
        assert carriers
        assert all(isinstance(e.detail["ids"], tuple) for e in carriers)

    def test_lineage_works_on_reloaded_trace(self, finished_system, tmp_path):
        """The acid test: causal reconstruction from a file, not a live run."""
        from repro.obs import Lineage

        live = Lineage.from_system(finished_system)
        path = write_jsonl(finished_system.sim.trace, tmp_path / "t.jsonl")
        reloaded = Lineage(read_jsonl(path))
        assert reloaded.update_ids() == live.update_ids()
        for update_id in live.update_ids():
            a, b = live.for_update(update_id), reloaded.for_update(update_id)
            assert a.reflected_at == b.reflected_at
            assert len(a.hops) == len(b.hops)


class TestTimeline:
    def test_one_line_per_event(self, finished_system, tmp_path):
        trace = finished_system.sim.trace
        path = write_timeline(trace, tmp_path / "trace.txt")
        lines = path.read_text().splitlines()
        assert len(lines) == len(trace)
        assert "wh_commit" in path.read_text()

    def test_kind_filter(self, finished_system):
        text = to_timeline(finished_system.sim.trace, kinds=["wh_commit"])
        lines = [line for line in text.splitlines() if line]
        assert len(lines) == len(finished_system.sim.trace.of_kind("wh_commit"))


class TestExtensionDispatch:
    def test_formats_by_suffix(self, finished_system, tmp_path):
        trace = finished_system.sim.trace
        chrome = write_trace(trace, tmp_path / "a.json")
        jsonl = write_trace(trace, tmp_path / "b.jsonl")
        text = write_trace(trace, tmp_path / "c.txt")
        assert json.loads(chrome.read_text())["traceEvents"]
        assert len(read_jsonl(jsonl)) == len(trace)
        assert text.read_text().count("\n") == len(trace)

    def test_unknown_suffix_raises(self, finished_system, tmp_path):
        with pytest.raises(ReproError):
            write_trace(finished_system.sim.trace, tmp_path / "t.xml")
