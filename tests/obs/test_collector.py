"""Cross-process telemetry collector: drain/reset semantics and merging."""

from __future__ import annotations

import time

from repro.obs.collector import (
    CHILD_HISTOGRAM_BOUND,
    ShardTelemetry,
    drain_registry,
    merge_payload,
)
from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import ThreadSafeTrace


class TestShardTelemetry:
    def test_registry_is_origin_tagged_and_bounded(self):
        telemetry = ShardTelemetry("merge:1234")
        assert telemetry.registry.origin == "merge:1234"
        histogram = telemetry.registry.histogram("h")
        assert histogram.bound == CHILD_HISTOGRAM_BOUND

    def test_now_without_epoch_is_zero(self):
        assert ShardTelemetry("s").now == 0.0

    def test_now_tracks_parent_epoch(self):
        telemetry = ShardTelemetry("s", clock0=time.monotonic() - 5.0)
        assert 4.9 < telemetry.now < 6.0

    def test_event_cap_counts_drops(self):
        telemetry = ShardTelemetry("s", max_events=3)
        for n in range(5):
            telemetry.record("k", "p", n=n)
        payload = telemetry.drain()
        assert len(payload["events"]) == 3
        assert payload["dropped_events"] == 2
        # drain resets the buffer and the drop counter
        telemetry.record("k", "p", n=99)
        payload = telemetry.drain()
        assert len(payload["events"]) == 1
        assert payload["dropped_events"] == 0

    def test_drain_payload_shape(self):
        telemetry = ShardTelemetry("merge:9", clock0=time.monotonic())
        telemetry.registry.counter("c", view="V1").inc(2)
        telemetry.record("proc_compute", "compute:merge", view="V1")
        payload = telemetry.drain()
        assert payload["origin"] == "merge:9"
        assert payload["counters"] == [("c", (("view", "V1"),), 2.0)]
        (when, kind, process, detail) = payload["events"][0]
        assert kind == "proc_compute" and detail == {"view": "V1"}
        assert when >= 0.0


class TestDrainRegistry:
    def test_counters_reset_to_zero(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        payload = drain_registry(registry)
        assert payload["counters"] == [("c", (), 3.0)]
        # additive: next drain carries only the new increment
        assert drain_registry(registry)["counters"] == []
        registry.counter("c").inc(1)
        assert drain_registry(registry)["counters"] == [("c", (), 1.0)]

    def test_gauges_keep_value_restart_minmax(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        for value in (1.0, 5.0, 3.0):
            gauge.set(value)
        payload = drain_registry(registry)
        assert payload["gauges"] == [("g", (), 3.0, 1.0, 5.0)]
        assert gauge.min == gauge.max == gauge.value == 3.0

    def test_histograms_reset(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", bound=4)
        for value in range(10):
            histogram.observe(float(value))
        name, labels, count, total, maximum, values, bound = drain_registry(
            registry
        )["histograms"][0]
        assert (count, total, maximum, bound) == (10, 45.0, 9.0, 4)
        assert len(values) == 4
        assert histogram.count == 0 and histogram.values() == ()

    def test_untouched_instruments_omitted(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g")
        registry.histogram("h")
        payload = drain_registry(registry)
        assert payload == {"counters": [], "gauges": [], "histograms": []}


class TestMergePayload:
    def drained(self, origin: str = "merge:1") -> dict:
        telemetry = ShardTelemetry(origin)
        telemetry.registry.counter("reqs", view="V1").inc(4)
        telemetry.registry.gauge("depth").set(2.0)
        telemetry.registry.histogram("lat").observe(0.5)
        telemetry.record("proc_compute", f"compute:{origin}", view="V1")
        return telemetry.drain()

    def test_origin_becomes_identity_label(self):
        registry = MetricsRegistry(locked=True)
        merge_payload(registry, None, self.drained("merge:1"))
        merge_payload(registry, None, self.drained("merge:2"))
        first = registry.get("reqs", view="V1", origin="merge:1")
        second = registry.get("reqs", view="V1", origin="merge:2")
        assert first is not second
        assert first.value == second.value == 4.0
        assert first.origin == "merge:1"

    def test_repeated_merges_are_additive(self):
        registry = MetricsRegistry(locked=True)
        merge_payload(registry, None, self.drained())
        merge_payload(registry, None, self.drained())
        assert registry.value("reqs", view="V1", origin="merge:1") == 8.0
        histogram = registry.get("lat", origin="merge:1")
        assert histogram.count == 2 and histogram.total == 1.0

    def test_gauge_minmax_survive_the_wire(self):
        telemetry = ShardTelemetry("s")
        gauge = telemetry.registry.gauge("g")
        for value in (1.0, 9.0, 4.0):
            gauge.set(value)
        registry = MetricsRegistry()
        merge_payload(registry, None, telemetry.drain())
        merged = registry.get("g", origin="s")
        assert (merged.value, merged.min, merged.max) == (4.0, 1.0, 9.0)

    def test_events_land_in_trace_with_origin(self):
        registry = MetricsRegistry(locked=True)
        trace = ThreadSafeTrace()
        merge_payload(registry, trace, self.drained("merge:7"))
        (event,) = trace.of_kind("proc_compute")
        assert event.process == "compute:merge:7"
        assert event.detail["origin"] == "merge:7"

    def test_dropped_events_surface_as_counter(self):
        telemetry = ShardTelemetry("s", max_events=1)
        telemetry.record("k", "p")
        telemetry.record("k", "p")
        registry = MetricsRegistry()
        merge_payload(registry, ThreadSafeTrace(), telemetry.drain())
        assert registry.value("telemetry_events_dropped", origin="s") == 1.0

    def test_returns_instruments_touched(self):
        assert merge_payload(MetricsRegistry(), None, self.drained()) == 3
