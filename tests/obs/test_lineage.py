"""Causal lineage reconstruction: completeness, faults, monotonicity.

The acceptance bar for the observability layer: ``Lineage.for_update``
must return the complete source→warehouse hop chain for **every**
reflected update of a b1-style workload — including under an actively
hostile network (drops + duplicates recovered by reliable channels),
where retransmitted frames must not duplicate or lose hops.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultPlan
from repro.obs import Lineage, LineageError
from repro.system.config import SystemConfig

from tests.obs.conftest import run_paper_system

#: the stages every reflected update must pass through, in causal order
EXPECTED_STAGES = (
    "src_commit",
    "int_number",
    "vm_compute",
    "merge_ready",
    "merge_submit",
    "wh_start",
    "wh_commit",
)


def assert_complete_chain(chain) -> None:
    """One reflected update's chain covers every Figure-1 stage, in order."""
    kinds = [hop.kind for hop in chain.hops]
    positions = []
    for stage in EXPECTED_STAGES:
        assert stage in kinds, (
            f"U{chain.update_id} chain is missing {stage!r}: {kinds}"
        )
        positions.append(kinds.index(stage))
    assert positions == sorted(positions), (
        f"U{chain.update_id} stages out of causal order: {kinds}"
    )
    times = [hop.time for hop in chain.hops]
    assert times == sorted(times)


class TestCompleteness:
    def test_every_reflected_update_has_full_chain(self, finished_system):
        lineage = Lineage.from_system(finished_system)
        assert len(lineage) == 25
        assert lineage.unreflected() == ()
        for chain in lineage.all():
            assert_complete_chain(chain)

    def test_chain_endpoints_and_timing(self, finished_system):
        lineage = Lineage.from_system(finished_system)
        for chain in lineage.all():
            assert chain.source is not None
            assert chain.source.startswith(("src", "coordinator"))
            assert chain.hops[0].kind == "src_commit"
            assert chain.hops[-1].kind in ("wh_commit", "proc_msg")
            assert chain.latency is not None and chain.latency > 0
            assert chain.latency >= chain.total_queue_wait
            assert chain.warehouse_txns

    def test_latency_matches_metrics_staleness(self, finished_system):
        """Lineage and RunMetrics measure the same quantity independently."""
        from repro.system.metrics import staleness_per_update

        staleness = staleness_per_update(finished_system)
        lineage = Lineage.from_system(finished_system)
        for update_id, lag in staleness.items():
            assert lineage.for_update(update_id).latency == pytest.approx(lag)

    def test_unknown_update_raises(self, finished_system):
        lineage = Lineage.from_system(finished_system)
        with pytest.raises(LineageError):
            lineage.for_update(10_000)

    def test_works_under_kind_filtering(self):
        """LINEAGE_KINDS is the documented minimal filter — prove it."""
        from repro.obs.lineage import LINEAGE_KINDS

        system = run_paper_system(
            SystemConfig(seed=21, trace_kinds=LINEAGE_KINDS)
        )
        recorded = {e.kind for e in system.sim.trace}
        assert recorded <= LINEAGE_KINDS
        lineage = Lineage.from_system(system)
        assert lineage.unreflected() == ()
        for chain in lineage.all():
            assert_complete_chain(chain)


class TestUnderFaults:
    """Retransmission must not corrupt causal chains (satellite d)."""

    PLAN = FaultPlan(
        seed=17,
        drop_rate=0.08,
        duplicate_rate=0.04,
        delay_spike_rate=0.02,
        delay_spike=6.0,
    )

    @pytest.fixture(scope="class")
    def faulted(self):
        system = run_paper_system(
            SystemConfig(seed=3, fault_plan=self.PLAN), updates=20, seed=3
        )
        # the scenario is vacuous unless the network actually misbehaved
        assert system.sim.trace.of_kind("msg_retransmit")
        assert system.sim.trace.of_kind("msg_drop")
        return system

    def test_chains_complete_despite_retransmits(self, faulted):
        lineage = Lineage.from_system(faulted)
        assert len(lineage) == 20
        assert lineage.unreflected() == ()
        for chain in lineage.all():
            assert_complete_chain(chain)

    def test_no_duplicate_hops_from_duplicate_frames(self, faulted):
        """Exactly-once delivery ⇒ exactly one numbering + one reflection
        hop per update, no matter how many copies crossed the network."""
        lineage = Lineage.from_system(faulted)
        for chain in lineage.all():
            kinds = [hop.kind for hop in chain.hops]
            assert kinds.count("src_commit") == 1
            assert kinds.count("int_number") == 1
            notification_hops = [
                hop for hop in chain.hops
                if hop.kind == "proc_msg"
                and hop.detail.get("message") == "UpdateNotification"
            ]
            assert len(notification_hops) == 1


@given(seed=st.integers(min_value=0, max_value=10_000),
       rate=st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=20, deadline=None)
def test_hop_timestamps_monotone(seed, rate):
    """Property: for any workload, every chain's hop times are
    non-decreasing, start at the source commit, and end no earlier than
    the warehouse commit that reflects the update."""
    system = run_paper_system(SystemConfig(seed=seed), updates=12,
                              rate=rate, seed=seed)
    lineage = Lineage.from_system(system)
    for chain in lineage.all():
        times = [hop.time for hop in chain.hops]
        assert all(a <= b for a, b in zip(times, times[1:]))
        if chain.reflected:
            assert times[0] == chain.source_commit_time
            assert times[-1] >= chain.reflected_at
