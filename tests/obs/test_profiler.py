"""Plan profiler: labelling, delta-based publication, system wiring."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs.profiler import PROF_KEY, PlanProfiler
from repro.obs.registry import MetricsRegistry
from repro.system.config import SystemConfig

from tests.obs.conftest import run_paper_system


class _Node:
    def __init__(self, label: str):
        self._label = label

    def describe(self, indent: int) -> list[str]:
        return [" " * indent + self._label]


class TestAccumulation:
    def test_records_per_node(self):
        profiler = PlanProfiler()
        node = _Node("select[x>1]")
        profiler.node(node, 100, 5, 2)
        profiler.node(node, 200, 3, 1)
        assert profiler.enabled_nodes == 1
        assert profiler.stats() == {
            "select[x>1]": {"calls": 2, "ns": 300, "rows_in": 8, "rows_out": 3}
        }

    def test_duplicate_labels_disambiguated(self):
        # nodes are keyed by id(); keep both alive, as plan trees do
        profiler = PlanProfiler()
        first, second = _Node("join[on=('B',)]"), _Node("join[on=('B',)]")
        profiler.node(first, 10, 1, 1)
        profiler.node(second, 20, 1, 1)
        assert set(profiler.stats()) == {"join[on=('B',)]",
                                         "join[on=('B',)]#1"}

    def test_stats_ordered_heaviest_first(self):
        profiler = PlanProfiler()
        cheap, costly = _Node("cheap"), _Node("costly")
        profiler.node(cheap, 10, 0, 0)
        profiler.node(costly, 1000, 0, 0)
        assert list(profiler.stats()) == ["costly", "cheap"]


class TestPublication:
    def test_publishes_all_four_families(self):
        profiler = PlanProfiler()
        profiler.node(_Node("select"), 100, 5, 2)
        registry = MetricsRegistry()
        assert profiler.publish_into(registry) == 4
        assert registry.value("plan_node_calls", node="select") == 1.0
        assert registry.value("plan_node_time_ns", node="select") == 100.0
        assert registry.value("plan_node_rows_in", node="select") == 5.0
        assert registry.value("plan_node_rows_out", node="select") == 2.0

    def test_republish_is_delta_based(self):
        profiler = PlanProfiler()
        node = _Node("select")
        profiler.node(node, 100, 5, 2)
        registry = MetricsRegistry()
        profiler.publish_into(registry)
        # nothing new: idempotent
        assert profiler.publish_into(registry) == 0
        assert registry.value("plan_node_calls", node="select") == 1.0
        # new work publishes only the increment
        profiler.node(node, 50, 1, 1)
        profiler.publish_into(registry)
        assert registry.value("plan_node_calls", node="select") == 2.0
        assert registry.value("plan_node_time_ns", node="select") == 150.0

    def test_publish_into_two_registries(self):
        # a shard profiler drains into the child registry, the parent
        # flush publishes again — each registry sees the full totals
        profiler = PlanProfiler()
        profiler.node(_Node("select"), 100, 5, 2)
        first = MetricsRegistry()
        profiler.publish_into(first)
        second = MetricsRegistry()
        # second registry gets only post-publish deltas: document this
        assert profiler.publish_into(second) == 0

    def test_format_empty_and_filled(self):
        profiler = PlanProfiler()
        assert "no propagations" in profiler.format()
        profiler.node(_Node("aggregate[sum]"), 2_000_000, 10, 4)
        table = profiler.format()
        assert "aggregate[sum]" in table
        assert "calls" in table and "rows_out" in table


class TestSystemIntegration:
    @pytest.fixture(scope="class")
    def profiled_system(self):
        return run_paper_system(SystemConfig(seed=21, profile_plans=True))

    def test_nodes_published_to_registry(self, profiled_system):
        registry = profiled_system.sim.metrics
        calls = registry.family("plan_node_calls")
        assert calls, "no plan nodes recorded"
        assert all(m.value > 0 for m in calls)
        # exclusive time: every node family also has a time counter
        assert len(registry.family("plan_node_time_ns")) == len(calls)

    def test_per_view_propagate_timers(self, profiled_system):
        registry = profiled_system.sim.metrics
        for view in profiled_system.view_managers:
            assert registry.value("plan_propagate_calls", view=view) > 0
            assert registry.value("plan_propagate_time_ns", view=view) > 0

    def test_profile_report(self, profiled_system):
        table = profiled_system.profile_report()
        assert "node" in table and "calls" in table

    def test_profile_report_requires_enabling(self):
        system = run_paper_system(SystemConfig(seed=21))
        with pytest.raises(ReproError):
            system.profile_report()
        assert not system.sim.metrics.family("plan_node_calls")

    def test_prof_key_staging(self):
        # the staging-dict sentinel is a plain string no node key collides
        # with (staged dicts key by ("delta", id), ("bd", name), id(node))
        assert isinstance(PROF_KEY, str)
