"""Tests for actions and action lists."""

import pytest

from repro.errors import ViewManagerError
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.viewmgr.actions import Action, ActionKind, ActionList


class TestAction:
    def test_apply_delta(self):
        action = Action("V", ActionKind.APPLY_DELTA, Delta.insert(Row(a=1)))
        rel = Relation()
        action.apply_to(rel)
        assert Row(a=1) in rel

    def test_replace(self):
        action = Action(
            "V", ActionKind.REPLACE, replacement=((Row(a=7), 2),)
        )
        rel = Relation(rows=[Row(a=1)])
        action.apply_to(rel)
        assert rel.sorted_rows() == [Row(a=7), Row(a=7)]


class TestActionList:
    def test_from_delta(self):
        al = ActionList.from_delta("V", "m", (3,), Delta.insert(Row(a=1)))
        assert al.last_update == 3
        assert al.covered == (3,)
        assert not al.is_empty

    def test_from_empty_delta_still_a_list(self):
        al = ActionList.from_delta("V", "m", (3,), Delta())
        assert al.is_empty
        assert al.covered == (3,)

    def test_covered_must_be_increasing(self):
        with pytest.raises(ViewManagerError):
            ActionList("V", "m", 2, (2, 1), ())
        with pytest.raises(ViewManagerError):
            ActionList("V", "m", 2, (1, 1, 2), ())

    def test_covered_nonempty(self):
        with pytest.raises(ViewManagerError):
            ActionList("V", "m", 0, (), ())

    def test_last_update_must_match(self):
        with pytest.raises(ViewManagerError):
            ActionList("V", "m", 5, (1, 2), ())

    def test_actions_for_other_view_rejected(self):
        action = Action("Other", ActionKind.APPLY_DELTA, Delta.insert(Row(a=1)))
        with pytest.raises(ViewManagerError):
            ActionList("V", "m", 1, (1,), (action,))

    def test_replacement_constructor(self):
        contents = Relation(rows=[Row(a=1), Row(a=1)])
        al = ActionList.replacement("V", "m", (1, 2), contents)
        rel = Relation(rows=[Row(a=9)])
        for action in al.actions:
            action.apply_to(rel)
        assert rel == contents

    def test_net_delta(self):
        al = ActionList.from_delta("V", "m", (1,), Delta({Row(a=1): 2}))
        assert al.net_delta() == Delta({Row(a=1): 2})
        empty = ActionList.from_delta("V", "m", (1,), Delta())
        assert empty.net_delta().is_empty()

    def test_str(self):
        al = ActionList.from_delta("V", "m", (1, 3), Delta.insert(Row(a=1)))
        assert "U{1,3}" in str(al)
