"""Deeper tests of the snapshot / compensate query pipelines."""

import pytest

from repro.errors import ViewManagerError
from repro.integrator.basedata import BaseDataService
from repro.messages import (
    ActionListMessage,
    NumberedUpdate,
    SnapshotResponse,
    UpdateForView,
)
from repro.relational.database import Database
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.update import Update
from repro.viewmgr.complete import CompleteViewManager
from repro.viewmgr.strong import StrongViewManager

SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
VIEW = parse_view("V = SELECT * FROM R JOIN S")


class MergeSink(Process):
    def __init__(self, sim, name="merge"):
        super().__init__(sim, name)
        self.lists = []

    def handle(self, message, sender):
        if isinstance(message, ActionListMessage):
            self.lists.append((self.sim.now, message.action_list))


def initial_db() -> Database:
    db = Database()
    db.create_relation("R", SCHEMAS["R"], [Row(A=1, B=2)])
    db.create_relation("S", SCHEMAS["S"])
    return db


def build(manager_cls, mode, query_latency=2.0, **kwargs):
    sim = Simulator()
    merge = MergeSink(sim)
    manager = manager_cls(sim, VIEW, SCHEMAS, mode=mode, **kwargs)
    manager.connect(merge, 1.0)
    service = BaseDataService(sim)
    service.seed(initial_db(), SCHEMAS)
    manager.connect(service, query_latency)
    service.connect(manager, query_latency)
    driver = MergeSink(sim, "driver")
    driver.connect(manager, 0.0)
    driver.connect(service, 0.0)
    return sim, manager, merge, service, driver


def feed(sim, driver, manager, update_id, update, at):
    sim.schedule(at, driver.send, "basedata", NumberedUpdate(update_id, (update,)))
    sim.schedule(at, driver.send, manager.name, UpdateForView(update_id, "V", (update,)))


class TestSnapshotBurst:
    def test_burst_of_updates_processed_serially_and_correctly(self):
        """Several updates queue while the first snapshot query is in
        flight; each must be computed against its own pre-state."""
        sim, manager, merge, service, driver = build(
            CompleteViewManager, "snapshot", query_latency=5.0
        )
        for index in range(3):
            feed(
                sim, driver, manager, index + 1,
                Update.insert("S", {"B": 2, "C": index}), at=0.1 * index,
            )
        sim.run()
        covered = [al.covered for _t, al in merge.lists]
        assert covered == [(1,), (2,), (3,)]
        deltas = [al.net_delta().counts() for _t, al in merge.lists]
        assert deltas[0] == {Row(A=1, B=2, C=0): 1}
        assert deltas[1] == {Row(A=1, B=2, C=1): 1}
        assert deltas[2] == {Row(A=1, B=2, C=2): 1}
        # Three round trips happened (one per update).
        assert service.queries_answered == 3

    def test_snapshot_query_deferred_until_service_catches_up(self):
        """The manager's query can reach the service before the numbered
        update does; the service must defer, not answer stale."""
        sim, manager, merge, service, driver = build(
            CompleteViewManager, "snapshot", query_latency=0.0
        )
        update = Update.insert("S", {"B": 2, "C": 9})
        # Route the update to the manager immediately but delay the
        # service's copy: the manager will ask for version 0 (fine) —
        # so instead process update 2 whose pre-state (version 1) the
        # service hasn't seen yet.
        first = Update.insert("S", {"B": 2, "C": 1})
        sim.schedule(0.0, driver.send, manager.name, UpdateForView(1, "V", (first,)))
        sim.schedule(0.0, driver.send, manager.name, UpdateForView(2, "V", (update,)))
        sim.schedule(6.0, driver.send, "basedata", NumberedUpdate(1, (first,)))
        sim.schedule(7.0, driver.send, "basedata", NumberedUpdate(2, (update,)))
        sim.run()
        assert [al.covered for _t, al in merge.lists] == [(1,), (2,)]
        assert service.queries_deferred >= 1


class TestCompensateDeletes:
    def test_compensation_rolls_back_interleaved_delete(self):
        """A delete committed after the batch start must be re-added when
        reconstructing the pre-state."""
        sim, manager, merge, service, driver = build(
            StrongViewManager, "compensate", query_latency=4.0
        )
        insert_s = Update.insert("S", {"B": 2, "C": 7})
        delete_r = Update.delete("R", {"A": 1, "B": 2})
        # Both reach the service quickly; the manager only processes U1
        # (the S insert) and reads a current state where R is already
        # empty — compensation must restore R's row for U1's pre-state.
        sim.schedule(0.0, driver.send, "basedata", NumberedUpdate(1, (insert_s,)))
        sim.schedule(0.1, driver.send, "basedata", NumberedUpdate(2, (delete_r,)))
        sim.schedule(0.0, driver.send, manager.name, UpdateForView(1, "V", (insert_s,)))
        sim.schedule(20.0, driver.send, manager.name, UpdateForView(2, "V", (delete_r,)))
        sim.run()
        deltas = [al.net_delta().counts() for _t, al in merge.lists]
        # U1: against pre-state (R has its row) the join produces one row.
        assert deltas[0] == {Row(A=1, B=2, C=7): 1}
        # U2: deleting R's row removes the joined row again.
        assert deltas[1] == {Row(A=1, B=2, C=7): -1}


class TestStaleResponseGuard:
    def test_unexpected_response_rejected(self):
        sim, manager, _merge, _service, driver = build(
            CompleteViewManager, "snapshot"
        )
        rogue = SnapshotResponse(999, 0, {})
        sim.schedule(0.0, driver.send, manager.name, rogue)
        with pytest.raises(ViewManagerError, match="stale snapshot"):
            sim.run()
