"""Behavioural tests for the view-manager classes."""

import pytest

from repro.errors import ViewManagerError
from repro.integrator.basedata import BaseDataService
from repro.messages import ActionListMessage, NumberedUpdate, UpdateForView
from repro.relational.database import Database
from repro.relational.parser import parse_view
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sources.update import Update
from repro.viewmgr.complete import CompleteViewManager
from repro.viewmgr.complete_n import CompleteNViewManager, EndOfBlock
from repro.viewmgr.convergent import ConvergentViewManager
from repro.viewmgr.naive import NaiveViewManager
from repro.viewmgr.periodic import PeriodicRefreshManager
from repro.viewmgr.strong import StrongViewManager

SCHEMAS = {"R": Schema(["A", "B"]), "S": Schema(["B", "C"])}
VIEW = parse_view("V = SELECT * FROM R JOIN S")


class MergeSink(Process):
    def __init__(self, sim):
        super().__init__(sim, "merge")
        self.lists = []

    def handle(self, message, sender):
        assert isinstance(message, ActionListMessage)
        self.lists.append((self.sim.now, message.action_list))


def initial_db() -> Database:
    db = Database()
    db.create_relation("R", SCHEMAS["R"], [Row(A=1, B=2)])
    db.create_relation("S", SCHEMAS["S"])
    return db


def rig(manager_cls, sim=None, mode="cached", **kwargs):
    sim = sim or Simulator()
    merge = MergeSink(sim)
    manager = manager_cls(sim, VIEW, SCHEMAS, mode=mode, **kwargs) \
        if mode is not None else manager_cls(sim, VIEW, SCHEMAS, **kwargs)
    manager.connect(merge, 1.0)
    service = BaseDataService(sim)
    service.seed(initial_db(), SCHEMAS)
    manager.connect(service, 1.0)
    service.connect(manager, 1.0)
    if mode == "cached":
        manager.seed_replica(initial_db())
    driver = MergeSink(sim)  # reused as a dumb sender
    driver.name = "driver"
    driver.connect(manager, 0.0)
    driver.connect(service, 0.0)
    return sim, manager, merge, service, driver


def send_update(sim, driver, manager, update_id, update, at=0.0, feed_service=True):
    if feed_service:
        sim.schedule(at, driver.send, "basedata", NumberedUpdate(update_id, (update,)))
    sim.schedule(
        at, driver.send, manager.name, UpdateForView(update_id, "V", (update,))
    )


class TestCompleteManager:
    def test_one_action_list_per_update(self):
        sim, manager, merge, _service, driver = rig(CompleteViewManager)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        send_update(sim, driver, manager, 2, Update.insert("S", {"B": 2, "C": 4}), at=0.1)
        sim.run()
        assert [al.covered for _t, al in merge.lists] == [(1,), (2,)]

    def test_delta_content_correct(self):
        sim, manager, merge, _service, driver = rig(CompleteViewManager)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        sim.run()
        al = merge.lists[0][1]
        assert al.net_delta().counts() == {Row(A=1, B=2, C=3): 1}

    def test_empty_delta_still_sent(self):
        sim, manager, merge, _service, driver = rig(CompleteViewManager)
        # B=99 joins nothing in R.
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 99, "C": 3}))
        sim.run()
        assert merge.lists[0][1].is_empty

    def test_replica_advances(self):
        sim, manager, merge, _service, driver = rig(CompleteViewManager)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        send_update(sim, driver, manager, 2, Update.delete("S", {"B": 2, "C": 3}), at=0.1)
        sim.run()
        deltas = [al.net_delta() for _t, al in merge.lists]
        assert deltas[0].counts() == {Row(A=1, B=2, C=3): 1}
        assert deltas[1].counts() == {Row(A=1, B=2, C=3): -1}

    def test_unseeded_cached_mode_raises(self):
        sim = Simulator()
        merge = MergeSink(sim)
        manager = CompleteViewManager(sim, VIEW, SCHEMAS, mode="cached")
        manager.connect(merge, 0.0)
        driver = MergeSink(sim)
        driver.name = "driver"
        driver.connect(manager, 0.0)
        sim.schedule(
            0.0, driver.send, manager.name,
            UpdateForView(1, "V", (Update.insert("S", {"B": 1, "C": 1}),)),
        )
        with pytest.raises(ViewManagerError, match="seed_replica"):
            sim.run()

    def test_wrong_view_rejected(self):
        sim, manager, _merge, _service, driver = rig(CompleteViewManager)
        sim.schedule(
            0.0, driver.send, manager.name,
            UpdateForView(1, "Other", (Update.insert("S", {"B": 1, "C": 1}),)),
        )
        with pytest.raises(ViewManagerError):
            sim.run()

    def test_snapshot_mode_round_trip(self):
        sim, manager, merge, service, driver = rig(
            CompleteViewManager, mode="snapshot"
        )
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        sim.run()
        assert merge.lists[0][1].net_delta().counts() == {Row(A=1, B=2, C=3): 1}
        assert service.queries_answered >= 1

    def test_invalid_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ViewManagerError):
            CompleteViewManager(sim, VIEW, SCHEMAS, mode="telepathy")


class TestStrongManager:
    def test_batches_backlog(self):
        # Slow compute: updates pile up while the first is processed.
        sim, manager, merge, _service, driver = rig(
            StrongViewManager, compute_cost=lambda n, d: 10.0
        )
        for i in range(4):
            send_update(
                sim, driver, manager, i + 1,
                Update.insert("S", {"B": 2, "C": i}), at=float(i) * 0.5,
            )
        sim.run()
        covered = [al.covered for _t, al in merge.lists]
        assert covered[0] == (1,)
        assert covered[1] == (2, 3, 4)  # everything queued went in one batch

    def test_batch_max_caps_batch(self):
        sim, manager, merge, _service, driver = rig(
            StrongViewManager, compute_cost=lambda n, d: 10.0, batch_max=2
        )
        for i in range(5):
            send_update(
                sim, driver, manager, i + 1,
                Update.insert("S", {"B": 2, "C": i}), at=float(i) * 0.1,
            )
        sim.run()
        covered = [al.covered for _t, al in merge.lists]
        assert covered == [(1,), (2, 3), (4, 5)]

    def test_bad_batch_max(self):
        sim = Simulator()
        with pytest.raises(ViewManagerError):
            StrongViewManager(sim, VIEW, SCHEMAS, batch_max=0)

    def test_compensate_mode_reconstructs_pre_state(self):
        """The current-state read is rolled back to the batch start."""
        sim, manager, merge, service, driver = rig(
            StrongViewManager, mode="compensate"
        )
        # Feed the service two updates but route only the first to the
        # manager *initially* — the second is a later, intertwined update
        # the compensation must subtract from the current state.
        first = Update.insert("S", {"B": 2, "C": 3})
        second = Update.insert("S", {"B": 2, "C": 4})
        sim.schedule(0.0, driver.send, "basedata", NumberedUpdate(1, (first,)))
        sim.schedule(0.0, driver.send, "basedata", NumberedUpdate(2, (second,)))
        sim.schedule(5.0, driver.send, manager.name, UpdateForView(1, "V", (first,)))
        sim.schedule(20.0, driver.send, manager.name, UpdateForView(2, "V", (second,)))
        sim.run()
        deltas = [al.net_delta().counts() for _t, al in merge.lists]
        assert deltas[0] == {Row(A=1, B=2, C=3): 1}
        assert deltas[1] == {Row(A=1, B=2, C=4): 1}


class TestNaiveManager:
    def test_naive_double_counts_intertwined_update(self):
        """The Problem-3 anomaly: reading a too-new state corrupts the delta."""
        sim = Simulator()
        merge = MergeSink(sim)
        manager = NaiveViewManager(sim, VIEW, SCHEMAS)
        manager.connect(merge, 1.0)
        service = BaseDataService(sim)
        service.seed(initial_db(), SCHEMAS)
        manager.connect(service, 1.0)
        service.connect(manager, 1.0)
        driver = MergeSink(sim)
        driver.name = "driver"
        driver.connect(manager, 0.0)
        driver.connect(service, 0.0)
        # Exactly the paper's Example-1 dilemma: while computing U1's join
        # of the new S tuple with R, "if R is updated before we read it, we
        # may get fewer or more tuples than what we wanted."  U2's R row is
        # already visible when the manager reads base data for U1.
        u1 = Update.insert("S", {"B": 2, "C": 3})
        u2 = Update.insert("R", {"A": 7, "B": 2})
        sim.schedule(0.0, driver.send, "basedata", NumberedUpdate(1, (u1,)))
        sim.schedule(0.0, driver.send, "basedata", NumberedUpdate(2, (u2,)))
        sim.schedule(0.0, driver.send, manager.name, UpdateForView(1, "V", (u1,)))
        sim.schedule(9.0, driver.send, manager.name, UpdateForView(2, "V", (u2,)))
        sim.run()
        first_delta = merge.lists[0][1].net_delta().counts()
        # Correct delta for U1 alone is {(1,2,3): +1}; the naive read also
        # joined U2's too-new R row.
        assert first_delta == {Row(A=1, B=2, C=3): 1, Row(A=7, B=2, C=3): 1}
        # And U2's own delta repeats the pair: the view double-counts, so
        # the naive manager is not even convergent.
        second_delta = merge.lists[1][1].net_delta().counts()
        assert second_delta.get(Row(A=7, B=2, C=3)) == 1


class TestCompleteNManager:
    def test_flushes_at_block_boundaries(self):
        sim, manager, merge, _service, driver = rig(
            CompleteNViewManager, n=2
        )
        for i in range(4):
            send_update(
                sim, driver, manager, i + 1,
                Update.insert("S", {"B": 2, "C": i}), at=float(i),
            )
            if (i + 1) % 2 == 0:
                block = (i + 1) // 2
                sim.schedule(
                    float(i) + 0.5, driver.send, manager.name,
                    EndOfBlock(block, i + 1),
                )
        sim.run()
        assert [al.covered for _t, al in merge.lists] == [(1, 2), (3, 4)]

    def test_waits_for_block_close(self):
        sim, manager, merge, _service, driver = rig(CompleteNViewManager, n=3)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 1}))
        sim.run()
        assert merge.lists == []  # block 1 never closed

    def test_bad_n(self):
        sim = Simulator()
        with pytest.raises(ViewManagerError):
            CompleteNViewManager(sim, VIEW, SCHEMAS, n=0)


class TestPeriodicManager:
    def test_refresh_replaces_view(self):
        sim, manager, merge, _service, driver = rig(
            PeriodicRefreshManager, mode=None, period=10.0
        )
        manager.seed_replica(initial_db())
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        sim.run()
        time, al = merge.lists[0]
        assert time >= 10.0
        assert al.actions[0].kind.value == "replace"
        assert al.actions[0].replacement == ((Row(A=1, B=2, C=3), 1),)

    def test_quiet_period_ships_nothing(self):
        sim, manager, merge, _service, _driver = rig(
            PeriodicRefreshManager, mode=None, period=5.0
        )
        manager.seed_replica(initial_db())
        sim.run(until=50.0)
        assert merge.lists == []

    def test_bad_period(self):
        sim = Simulator()
        with pytest.raises(ViewManagerError):
            PeriodicRefreshManager(sim, VIEW, SCHEMAS, period=0.0)


class TestConvergentManager:
    def test_splits_modify_into_two_lists(self):
        sim, manager, merge, _service, driver = rig(ConvergentViewManager)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 2, "C": 3}))
        send_update(
            sim, driver, manager, 2,
            Update.modify("S", {"B": 2, "C": 3}, {"B": 2, "C": 4}), at=1.0,
        )
        sim.run()
        lists = [al for _t, al in merge.lists]
        # Update 2 produced separate deletion and insertion lists.
        u2_lists = [al for al in lists if al.covered == (2,)]
        assert len(u2_lists) == 2
        assert u2_lists[0].net_delta().deletions()
        assert u2_lists[1].net_delta().insertions()

    def test_no_effect_update_sends_empty_list(self):
        sim, manager, merge, _service, driver = rig(ConvergentViewManager)
        send_update(sim, driver, manager, 1, Update.insert("S", {"B": 99, "C": 3}))
        sim.run()
        assert len(merge.lists) == 1
        assert merge.lists[0][1].is_empty
